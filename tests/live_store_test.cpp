// Live-corpus tests (DESIGN.md §11): epoch snapshots, Append/Delete/seal,
// background compaction, manifest v2 round trips, and the concurrency
// regression suite for the mutation path. Every *Concurrent* test here is
// also run under ThreadSanitizer by the `tsan` CI job (ctest label:
// concurrency) — the epoch-pinning invariants only mean something if they
// hold with readers, mutators, and the compactor genuinely racing.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "serve/corpus_epoch.h"
#include "serve/doc_service.h"
#include "serve/sharded_store.h"
#include "store/format.h"
#include "util/random.h"

namespace rlz {
namespace {

Collection TestCollection(size_t target_bytes, uint64_t seed) {
  CorpusOptions options;
  options.target_bytes = target_bytes;
  options.seed = seed;
  return GenerateCorpus(options).collection;
}

// A small live store: 2 shards over ~256 KB, no auto-seal (tests seal
// explicitly unless they opt in).
std::unique_ptr<ShardedStore> SmallLiveStore(
    const Collection& collection, size_t tail_seal_bytes = 0) {
  ShardedStoreOptions options;
  options.num_shards = 2;
  options.dict_bytes = 1 << 16;
  options.live.tail_seal_bytes = tail_seal_bytes;
  return ShardedStore::Build(collection, options);
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + name;
}

// ---------------------------------------------------------------------------
// Append / tail serving

TEST(LiveStoreTest, AppendAssignsDenseIdsAndServesRawTail) {
  const Collection collection = TestCollection(1 << 18, 11);
  auto store = SmallLiveStore(collection);
  const size_t built = store->num_docs();
  const uint64_t seq0 = store->epoch_sequence();

  const Collection extra = TestCollection(1 << 16, 12);
  for (size_t i = 0; i < extra.num_docs(); ++i) {
    auto id = store->Append(extra.doc(i));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(id.value(), built + i);
  }
  EXPECT_EQ(store->num_docs(), built + extra.num_docs());
  EXPECT_GT(store->epoch_sequence(), seq0);  // every append published

  // Built docs and tail docs both serve byte-identically.
  std::string doc;
  ASSERT_TRUE(store->Get(0, &doc).ok());
  EXPECT_EQ(doc, collection.doc(0));
  for (size_t i = 0; i < extra.num_docs(); ++i) {
    ASSERT_TRUE(store->Get(built + i, &doc).ok());
    EXPECT_EQ(doc, extra.doc(i));
  }
  // Tail ranges clamp like archive ranges do.
  std::string slice;
  ASSERT_TRUE(store->GetRange(built, 3, 10, &slice).ok());
  EXPECT_EQ(slice, std::string(extra.doc(0)).substr(3, 10));
}

TEST(LiveStoreTest, SealTailGrowsRouterAndKeepsBytes) {
  const Collection collection = TestCollection(1 << 18, 21);
  auto store = SmallLiveStore(collection);
  const size_t built = store->num_docs();
  const int shards_before = store->num_shards();

  const Collection extra = TestCollection(1 << 16, 22);
  for (size_t i = 0; i < extra.num_docs(); ++i) {
    ASSERT_TRUE(store->Append(extra.doc(i)).ok());
  }
  ASSERT_TRUE(store->SealTail().ok());
  EXPECT_EQ(store->num_shards(), shards_before + 1);
  EXPECT_EQ(store->epoch()->tail_docs(), 0u);
  // The new shard owns exactly the sealed range.
  auto router = store->router_snapshot();
  EXPECT_EQ(router->start(static_cast<size_t>(shards_before)), built);
  EXPECT_EQ(router->num_docs(), built + extra.num_docs());

  std::string doc;
  for (size_t i = 0; i < extra.num_docs(); ++i) {
    ASSERT_TRUE(store->Get(built + i, &doc).ok());
    EXPECT_EQ(doc, extra.doc(i));
  }
  // Sealing an empty tail is a no-op.
  const uint64_t seq = store->epoch_sequence();
  ASSERT_TRUE(store->SealTail().ok());
  EXPECT_EQ(store->epoch_sequence(), seq);
}

TEST(LiveStoreTest, AutoSealAtThreshold) {
  const Collection collection = TestCollection(1 << 18, 31);
  auto store = SmallLiveStore(collection, /*tail_seal_bytes=*/1 << 14);
  const int shards_before = store->num_shards();
  const Collection extra = TestCollection(1 << 16, 32);
  for (size_t i = 0; i < extra.num_docs(); ++i) {
    ASSERT_TRUE(store->Append(extra.doc(i)).ok());
  }
  EXPECT_GT(store->num_shards(), shards_before);
  std::string doc;
  const size_t built = collection.num_docs();
  for (size_t i = 0; i < extra.num_docs(); ++i) {
    ASSERT_TRUE(store->Get(built + i, &doc).ok());
    EXPECT_EQ(doc, extra.doc(i));
  }
}

// ---------------------------------------------------------------------------
// Delete / tombstones

TEST(LiveStoreTest, DeleteTombstonesWithoutReusingIds) {
  const Collection collection = TestCollection(1 << 18, 41);
  auto store = SmallLiveStore(collection);
  const size_t victim = collection.num_docs() / 2;

  EXPECT_TRUE(store->IsLive(victim));
  ASSERT_TRUE(store->Delete(victim).ok());
  EXPECT_FALSE(store->IsLive(victim));
  EXPECT_EQ(store->num_docs(), collection.num_docs());  // id not reused

  std::string doc;
  EXPECT_EQ(store->Get(victim, &doc).code(), StatusCode::kNotFound);
  EXPECT_EQ(store->GetRange(victim, 0, 8, &doc).code(),
            StatusCode::kNotFound);
  // Neighbours are untouched.
  ASSERT_TRUE(store->Get(victim - 1, &doc).ok());
  EXPECT_EQ(doc, collection.doc(victim - 1));

  // Double delete and out-of-range ids fail crisply.
  EXPECT_EQ(store->Delete(victim).code(), StatusCode::kNotFound);
  EXPECT_EQ(store->Delete(store->num_docs()).code(),
            StatusCode::kOutOfRange);
}

TEST(LiveStoreTest, TailDeleteSurvivesSeal) {
  const Collection collection = TestCollection(1 << 17, 51);
  auto store = SmallLiveStore(collection);
  const size_t built = store->num_docs();
  const Collection extra = TestCollection(1 << 17, 52);
  ASSERT_GE(extra.num_docs(), 2u);
  for (size_t i = 0; i < extra.num_docs(); ++i) {
    ASSERT_TRUE(store->Append(extra.doc(i)).ok());
  }
  ASSERT_TRUE(store->Delete(built + 1).ok());
  std::string doc;
  EXPECT_EQ(store->Get(built + 1, &doc).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store->SealTail().ok());
  EXPECT_EQ(store->Get(built + 1, &doc).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store->Get(built, &doc).ok());
  EXPECT_EQ(doc, extra.doc(0));
}

TEST(LiveStoreTest, PinnedEpochIsSnapshotIsolated) {
  const Collection collection = TestCollection(1 << 18, 61);
  auto store = SmallLiveStore(collection);
  const size_t victim = 3;

  // Pin before the mutations.
  std::shared_ptr<const CorpusEpoch> pinned = store->epoch();
  ASSERT_TRUE(store->Delete(victim).ok());
  ASSERT_TRUE(store->Append("new document after the pin").ok());

  // The pinned epoch still serves the deleted doc and cannot see the
  // append; the current epoch shows the opposite.
  std::string doc;
  ASSERT_TRUE(pinned->Get(victim, &doc, nullptr, nullptr).ok());
  EXPECT_EQ(doc, collection.doc(victim));
  EXPECT_EQ(pinned->num_docs(), collection.num_docs());
  EXPECT_EQ(
      pinned->Get(collection.num_docs(), &doc, nullptr, nullptr).code(),
      StatusCode::kOutOfRange);
  EXPECT_EQ(store->Get(victim, &doc).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store->Get(collection.num_docs(), &doc).ok());
  EXPECT_EQ(doc, "new document after the pin");
}

// ---------------------------------------------------------------------------
// Compaction

TEST(LiveStoreTest, CompactionReclaimsTombstonedPayload) {
  const Collection collection = TestCollection(1 << 18, 71);
  ShardedStoreOptions options;
  options.num_shards = 2;
  options.dict_bytes = 1 << 16;
  options.live.compact_tombstone_fraction = 0.10;
  auto store = ShardedStore::Build(collection, options);

  // Nothing to do on a healthy store.
  auto idle = store->CompactOnce();
  ASSERT_TRUE(idle.ok());
  EXPECT_FALSE(idle.value().compacted);

  // Tombstone a third of shard 0.
  const size_t shard0_docs = store->router_snapshot()->start(1);
  std::vector<size_t> deleted;
  for (size_t id = 0; id < shard0_docs; id += 3) {
    ASSERT_TRUE(store->Delete(id).ok());
    deleted.push_back(id);
  }
  ASSERT_GT(store->shard_health(0).tombstoned_payload_bytes, 0u);

  auto report = store->CompactOnce();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().compacted);
  EXPECT_EQ(report.value().shard, 0);
  EXPECT_EQ(report.value().reason, CompactionReport::Reason::kTombstones);
  EXPECT_EQ(report.value().generation, 1u);
  EXPECT_LT(report.value().bytes_after, report.value().bytes_before);
  EXPECT_EQ(report.value().dead_docs, deleted.size());
  EXPECT_EQ(store->shard_health(0).tombstoned_payload_bytes, 0u);
  EXPECT_EQ(store->epoch()->shard_generation(0), 1u);

  // Live docs are byte-identical through the rewrite; dead ids stay dead.
  std::string doc;
  for (size_t id = 0; id < shard0_docs; ++id) {
    if (id % 3 == 0) {
      EXPECT_EQ(store->Get(id, &doc).code(), StatusCode::kNotFound);
    } else {
      ASSERT_TRUE(store->Get(id, &doc).ok());
      EXPECT_EQ(doc, collection.doc(id));
    }
  }
}

TEST(LiveStoreTest, PinnedReadersDrainAcrossCompactionSwap) {
  const Collection collection = TestCollection(1 << 18, 81);
  ShardedStoreOptions options;
  options.num_shards = 2;
  options.dict_bytes = 1 << 16;
  options.live.compact_tombstone_fraction = 0.05;
  auto store = ShardedStore::Build(collection, options);

  const size_t shard0_docs = store->router_snapshot()->start(1);
  std::shared_ptr<const CorpusEpoch> pinned = store->epoch();
  for (size_t id = 0; id < shard0_docs; id += 4) {
    ASSERT_TRUE(store->Delete(id).ok());
  }
  auto report = store->CompactOnce();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().compacted);

  // The pinned epoch still decodes every document — including the ones
  // the compaction just reclaimed — from the pre-compaction shard.
  std::string doc;
  for (size_t id = 0; id < shard0_docs; ++id) {
    ASSERT_TRUE(pinned->Get(id, &doc, nullptr, nullptr).ok());
    EXPECT_EQ(doc, collection.doc(id));
  }
  EXPECT_EQ(pinned->shard_generation(0), 0u);
  EXPECT_EQ(store->epoch()->shard_generation(0), 1u);
}

TEST(LiveStoreTest, StaleDictionarySealTriggersResample) {
  // Build on corpus A, then append *drifted* content (a different seed —
  // new hosts, new vocabulary) with reuse_append_dictionary: the sealed
  // tail encodes against A's dictionary and comes out stale (§3.6).
  const Collection collection = TestCollection(1 << 18, 91);
  ShardedStoreOptions options;
  options.num_shards = 2;
  options.dict_bytes = 1 << 16;
  options.live.reuse_append_dictionary = true;
  // Only the staleness trigger is armed.
  options.live.compact_tombstone_fraction = 2.0;
  options.live.compact_stale_unused_fraction = 2.0;
  options.live.compact_stale_decay = 0.30;
  auto store = ShardedStore::Build(collection, options);

  const Collection drifted = TestCollection(1 << 17, 4242);
  for (size_t i = 0; i < drifted.num_docs(); ++i) {
    ASSERT_TRUE(store->Append(drifted.doc(i)).ok());
  }
  ASSERT_TRUE(store->SealTail().ok());
  const int stale_shard = store->num_shards() - 1;

  // The drifted shard's factors are measurably shorter than the
  // build-time baseline.
  const ShardHealth health = store->shard_health(stale_shard);
  EXPECT_GE(health.stats.avg_factor_decay(store->baseline_stats()), 0.30)
      << "drifted content should decay factor length vs the baseline";

  const uint64_t stale_bytes_before =
      store->epoch()->shard(stale_shard).stored_bytes();
  auto report = store->CompactOnce();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().compacted);
  EXPECT_EQ(report.value().shard, stale_shard);
  EXPECT_EQ(report.value().reason,
            CompactionReport::Reason::kStaleDictionary);
  // Re-sampling the dictionary from the drifted content itself must
  // compress it better than the stale append dictionary did.
  EXPECT_LT(report.value().bytes_after, stale_bytes_before);

  // And the rewrite is no longer stale: a second pass finds nothing.
  auto second = store->CompactOnce();
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().compacted);

  std::string doc;
  const size_t built = collection.num_docs();
  for (size_t i = 0; i < drifted.num_docs(); ++i) {
    ASSERT_TRUE(store->Get(built + i, &doc).ok());
    EXPECT_EQ(doc, drifted.doc(i));
  }
}

TEST(LiveStoreTest, CompactionOfFullyDeletedShardYieldsEmptyRewrite) {
  const Collection collection = TestCollection(1 << 17, 101);
  ShardedStoreOptions options;
  options.num_shards = 2;
  options.dict_bytes = 1 << 15;
  options.live.compact_tombstone_fraction = 0.5;
  auto store = ShardedStore::Build(collection, options);
  const size_t shard0_docs = store->router_snapshot()->start(1);
  for (size_t id = 0; id < shard0_docs; ++id) {
    ASSERT_TRUE(store->Delete(id).ok());
  }
  auto report = store->CompactOnce();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report.value().compacted);
  EXPECT_EQ(report.value().live_docs, 0u);
  EXPECT_EQ(report.value().dead_docs, shard0_docs);
  // Ids stay allocated and tombstoned; the rest of the corpus is intact.
  std::string doc;
  EXPECT_EQ(store->Get(0, &doc).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store->Get(shard0_docs, &doc).ok());
  EXPECT_EQ(doc, collection.doc(shard0_docs));
}

// ---------------------------------------------------------------------------
// Persistence (manifest v2 + v1 read-compat)

TEST(LiveStoreTest, SaveOpenRoundTripsLiveEpoch) {
  const Collection collection = TestCollection(1 << 18, 111);
  auto store = SmallLiveStore(collection);
  const size_t built = store->num_docs();

  // A genuinely live state: a sealed extra shard, deletes in both a
  // sealed shard and the open tail, and unsealed tail documents.
  const Collection extra = TestCollection(1 << 17, 112);
  ASSERT_GE(extra.num_docs(), 4u);
  size_t i = 0;
  for (; i < extra.num_docs() / 2; ++i) {
    ASSERT_TRUE(store->Append(extra.doc(i)).ok());
  }
  ASSERT_TRUE(store->SealTail().ok());
  for (; i < extra.num_docs(); ++i) {
    ASSERT_TRUE(store->Append(extra.doc(i)).ok());
  }
  ASSERT_TRUE(store->Delete(2).ok());                      // sealed shard
  ASSERT_TRUE(store->Delete(store->num_docs() - 1).ok());  // open tail

  const std::string path = TempPath("live_roundtrip.sharded");
  ASSERT_TRUE(store->Save(path).ok());
  auto reopened_or = ShardedStore::Open(path);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();

  EXPECT_EQ(reopened->num_docs(), store->num_docs());
  EXPECT_EQ(reopened->num_shards(), store->num_shards());
  EXPECT_EQ(reopened->epoch_sequence(), store->epoch_sequence());
  EXPECT_EQ(reopened->epoch()->deleted_docs(),
            store->epoch()->deleted_docs());
  std::string expected;
  std::string actual;
  for (size_t id = 0; id < store->num_docs(); ++id) {
    const Status original = store->Get(id, &expected);
    const Status restored = reopened->Get(id, &actual);
    ASSERT_EQ(original.code(), restored.code()) << "id " << id;
    if (original.ok()) {
      EXPECT_EQ(actual, expected) << "id " << id;
    }
  }

  // The reopened store is still live: appends, deletes, and seals work.
  auto id = reopened->Append("appended after reopen");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(reopened->Get(id.value(), &actual).ok());
  EXPECT_EQ(actual, "appended after reopen");
  ASSERT_TRUE(reopened->SealTail().ok());
  ASSERT_TRUE(reopened->Get(id.value(), &actual).ok());
  EXPECT_EQ(actual, "appended after reopen");
  (void)built;
}

TEST(LiveStoreTest, ServingOnlyOpenDisablesAppends) {
  const Collection collection = TestCollection(1 << 17, 121);
  auto store = SmallLiveStore(collection);
  ASSERT_TRUE(store->Append("tail doc").ok());
  const std::string path = TempPath("live_serving_only.sharded");
  ASSERT_TRUE(store->Save(path).ok());

  OpenOptions options;
  options.build_suffix_array = false;
  auto reopened_or = ShardedStore::Open(path, options);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();

  // Serving works — including the raw tail doc — but mutation is gated.
  std::string doc;
  ASSERT_TRUE(reopened->Get(0, &doc).ok());
  EXPECT_EQ(doc, collection.doc(0));
  ASSERT_TRUE(reopened->Get(collection.num_docs(), &doc).ok());
  EXPECT_EQ(doc, "tail doc");
  EXPECT_EQ(reopened->Append("nope").status().code(),
            StatusCode::kInvalidArgument);

  // Save from a serving-only open still preserves the append dictionary,
  // so a later full open is appendable again.
  const std::string path2 = TempPath("live_serving_only2.sharded");
  ASSERT_TRUE(reopened->Save(path2).ok());
  auto full_or = ShardedStore::Open(path2);
  ASSERT_TRUE(full_or.ok());
  EXPECT_TRUE(full_or.value()->Append("yes").ok());
}

TEST(LiveStoreTest, ReadsV1ManifestAsFrozenStore) {
  // Write shard files via a v2 Save, then hand-craft the v1 manifest the
  // pre-epoch format produced: shard count, boundaries, names — nothing
  // else. The store must open frozen: serving works, appends are gated.
  const Collection collection = TestCollection(1 << 17, 131);
  auto store = SmallLiveStore(collection);
  const std::string path = TempPath("live_v1_compat.sharded");
  ASSERT_TRUE(store->Save(path).ok());

  auto router = store->router_snapshot();
  EnvelopeWriter writer(ShardedStore::kFormatId, /*version=*/1);
  const size_t nshards = router->num_shards();
  writer.PutVarint64(nshards);
  for (size_t s = 0; s <= nshards; ++s) writer.PutVarint64(router->start(s));
  for (size_t s = 0; s < nshards; ++s) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".shard%04llu",
                  static_cast<unsigned long long>(s));
    writer.PutLengthPrefixed("live_v1_compat.sharded" + std::string(suffix));
  }
  ASSERT_TRUE(std::move(writer).WriteTo(path).ok());

  auto reopened_or = ShardedStore::Open(path);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();
  EXPECT_EQ(reopened->num_docs(), collection.num_docs());
  EXPECT_EQ(reopened->epoch_sequence(), 0u);
  std::string doc;
  ASSERT_TRUE(reopened->Get(1, &doc).ok());
  EXPECT_EQ(doc, collection.doc(1));
  EXPECT_EQ(reopened->Append("frozen").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LiveStoreTest, SealedTailTombstonesSurviveManifestRoundTrip) {
  // Regression: the tail tombstone bitmap is lazily sized to the tail
  // length at its last delete. Sealing used to carry the narrow bitmap
  // into the sealed shard, and a later delete in that shard copied it at
  // the narrow width — Bitmap::Set past size() made CountSet() and the
  // serialized index list disagree, corrupting every manifest written
  // afterwards.
  const Collection collection = TestCollection(1 << 17, 141);
  auto store = SmallLiveStore(collection);
  const size_t base = store->num_docs();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(store->Append("tail doc " + std::to_string(i)).ok());
  }
  ASSERT_TRUE(store->Delete(base).ok());  // bitmap now sized to tail pos 0
  ASSERT_TRUE(store->SealTail().ok());
  ASSERT_TRUE(store->Delete(base + 3).ok());  // beyond the narrow bitmap

  const std::string path = TempPath("live_sealed_tombstones.sharded");
  ASSERT_TRUE(store->Save(path).ok());
  auto reopened_or = ShardedStore::Open(path);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();
  std::string doc;
  EXPECT_EQ(reopened->Get(base, &doc).code(), StatusCode::kNotFound);
  EXPECT_EQ(reopened->Get(base + 3, &doc).code(), StatusCode::kNotFound);
  ASSERT_TRUE(reopened->Get(base + 1, &doc).ok());
  EXPECT_EQ(doc, "tail doc 1");
  ASSERT_TRUE(reopened->Get(base + 2, &doc).ok());
  EXPECT_EQ(doc, "tail doc 2");
}

// ---------------------------------------------------------------------------
// Durable (WAL'd) stores

TEST(LiveStoreTest, AckedAppendSurvivesReopenWithoutSave) {
  // The durability contract from the store's side: once Append returns
  // OK on a durable store, the document survives a reopen with no Save,
  // no Checkpoint, and no clean shutdown protocol — recovery replays it
  // from the WAL.
  const Collection collection = TestCollection(1 << 17, 151);
  const std::string dir = TempPath("live_durable_dir");
  std::filesystem::remove_all(dir);
  size_t base = 0;
  {
    auto store = SmallLiveStore(collection);
    base = store->num_docs();
    ASSERT_TRUE(store->MakeDurable(dir).ok());
    EXPECT_TRUE(store->durable());
    ASSERT_TRUE(store->Append("acked and durable").ok());
    ASSERT_TRUE(store->Delete(0).ok());
  }
  ShardedStore::RecoveryReport report;
  auto reopened_or = ShardedStore::OpenDurable(dir, {}, {}, nullptr, &report);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();
  EXPECT_EQ(report.replayed_records, 2u);
  std::string doc;
  ASSERT_TRUE(reopened->Get(base, &doc).ok());
  EXPECT_EQ(doc, "acked and durable");
  EXPECT_EQ(reopened->Get(0, &doc).code(), StatusCode::kNotFound);
}

TEST(LiveStoreTest, PlainSaveOpenStoresStayNonDurable) {
  // Pre-WAL persistence is untouched by the durability layer: a plain
  // Save/Open round trip yields a live, writable, non-durable store that
  // can still opt into a WAL afterwards.
  const Collection collection = TestCollection(1 << 17, 161);
  auto store = SmallLiveStore(collection);
  const std::string path = TempPath("live_non_durable.sharded");
  ASSERT_TRUE(store->Save(path).ok());

  auto reopened_or = ShardedStore::Open(path);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();
  EXPECT_FALSE(reopened->durable());
  EXPECT_FALSE(reopened->read_only());
  EXPECT_EQ(reopened->Checkpoint().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reopened->SyncWal().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(reopened->Append("still live").ok());

  const std::string dir = TempPath("live_upgraded_dir");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(reopened->MakeDurable(dir).ok());
  EXPECT_TRUE(reopened->durable());
  auto durable_or = ShardedStore::OpenDurable(dir);
  ASSERT_TRUE(durable_or.ok()) << durable_or.status().ToString();
  std::string doc;
  ASSERT_TRUE(
      durable_or.value()->Get(collection.num_docs(), &doc).ok());
  EXPECT_EQ(doc, "still live");
}

// ---------------------------------------------------------------------------
// DocService integration: live routing + cache invalidation

TEST(LiveStoreTest, ServiceInvalidatesCacheOnDelete) {
  const Collection collection = TestCollection(1 << 17, 141);
  auto store = SmallLiveStore(collection);
  DocServiceOptions options;
  options.num_threads = 2;
  DocService service(store.get(), options);

  // Warm the cache, then delete: the eviction hook must erase the entry
  // and subsequent requests must see NotFound, not stale cached bytes.
  const size_t victim = 1;
  GetResult warm = service.Get(victim).get();
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(*warm.text, collection.doc(victim));
  ASSERT_TRUE(store->Delete(victim).ok());
  EXPECT_GE(service.Stats().cache.erased, 1u);
  GetResult after = service.Get(victim).get();
  EXPECT_EQ(after.status.code(), StatusCode::kNotFound);

  // Appended documents are servable through the same service without any
  // reconstruction — the router snapshot refreshes per submission.
  auto id = store->Append("live append through the service");
  ASSERT_TRUE(id.ok());
  GetResult appended = service.Get(id.value()).get();
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(*appended.text, "live append through the service");
}

// ---------------------------------------------------------------------------
// Concurrency regression suite (run under TSan in CI)

// Readers pin epochs while appenders, deleters, and the background
// compactor publish new ones. Invariant: against a pinned epoch, every id
// either decodes to exactly its expected bytes or is NotFound-because-
// tombstoned *in that epoch* — never torn bytes, never a transient error.
TEST(LiveStoreTest, ConcurrentReadersAppsDeletesCompactions) {
  const Collection collection = TestCollection(1 << 18, 151);
  ShardedStoreOptions store_options;
  store_options.num_shards = 2;
  store_options.dict_bytes = 1 << 16;
  store_options.live.tail_seal_bytes = 1 << 15;  // seals happen mid-test
  store_options.live.compact_tombstone_fraction = 0.05;
  auto store = ShardedStore::Build(collection, store_options);
  const size_t built = store->num_docs();

  const Collection extra = TestCollection(1 << 17, 152);
  // Expected bytes for every id that will ever exist.
  std::vector<std::string> expected;
  expected.reserve(built + extra.num_docs());
  for (size_t i = 0; i < built; ++i) expected.emplace_back(collection.doc(i));
  for (size_t i = 0; i < extra.num_docs(); ++i) {
    expected.emplace_back(extra.doc(i));
  }

  store->StartCompactor(std::chrono::milliseconds(1));
  std::atomic<bool> stop{false};
  std::atomic<size_t> reads{0};

  std::thread appender([&] {
    for (size_t i = 0; i < extra.num_docs(); ++i) {
      auto id = store->Append(extra.doc(i));
      ASSERT_TRUE(id.ok());
      ASSERT_EQ(id.value(), built + i);
    }
  });
  std::thread deleter([&] {
    // Delete every 5th built doc — enough to trip the compactor's
    // tombstone trigger repeatedly while readers run.
    for (size_t id = 0; id < built; id += 5) {
      const Status status = store->Delete(id);
      ASSERT_TRUE(status.ok()) << status.ToString();
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + t);
      std::string doc;
      DecodeScratch scratch;
      while (!stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const CorpusEpoch> epoch = store->epoch();
        for (int k = 0; k < 32; ++k) {
          const size_t id = rng.Uniform(epoch->num_docs());
          const Status status =
              epoch->Get(id, &doc, /*disk=*/nullptr, &scratch);
          if (epoch->IsDeleted(id)) {
            ASSERT_EQ(status.code(), StatusCode::kNotFound);
          } else {
            ASSERT_TRUE(status.ok()) << status.ToString();
            ASSERT_EQ(doc, expected[id]) << "id " << id << " epoch "
                                         << epoch->sequence();
          }
          reads.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  appender.join();
  deleter.join();
  // Let readers observe the final state (post-append, post-delete,
  // possibly mid-compaction) before stopping.
  while (reads.load(std::memory_order_acquire) < 20000) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  store->StopCompactor();

  // Final consistency: every id answers correctly in the final epoch.
  std::shared_ptr<const CorpusEpoch> final_epoch = store->epoch();
  ASSERT_EQ(final_epoch->num_docs(), built + extra.num_docs());
  std::string doc;
  for (size_t id = 0; id < final_epoch->num_docs(); ++id) {
    if (id < built && id % 5 == 0) {
      EXPECT_EQ(final_epoch->Get(id, &doc, nullptr, nullptr).code(),
                StatusCode::kNotFound);
    } else {
      ASSERT_TRUE(final_epoch->Get(id, &doc, nullptr, nullptr).ok());
      EXPECT_EQ(doc, expected[id]);
    }
  }
}

// The service-level version: batched readers through DocService (decode
// cache on) against concurrent appends, deletes, and compaction. After a
// delete is published, no request may serve the stale cached bytes.
TEST(LiveStoreTest, ConcurrentServiceReadsWithMutations) {
  const Collection collection = TestCollection(1 << 18, 161);
  ShardedStoreOptions store_options;
  store_options.num_shards = 2;
  store_options.dict_bytes = 1 << 16;
  store_options.live.tail_seal_bytes = 1 << 15;
  store_options.live.compact_tombstone_fraction = 0.05;
  auto store = ShardedStore::Build(collection, store_options);
  const size_t built = store->num_docs();

  DocServiceOptions service_options;
  service_options.num_threads = 4;
  DocService service(store.get(), service_options);
  store->StartCompactor(std::chrono::milliseconds(1));

  const Collection extra = TestCollection(1 << 16, 162);
  std::vector<std::string> expected;
  for (size_t i = 0; i < built; ++i) expected.emplace_back(collection.doc(i));
  for (size_t i = 0; i < extra.num_docs(); ++i) {
    expected.emplace_back(extra.doc(i));
  }
  // Deleted ids flip their flag *before* Delete is issued, so a reader
  // that later observes the doc can only have raced the publish (allowed:
  // it decoded from an earlier epoch) — but once deleted_done is set,
  // every id in deleted_set must be NotFound.
  std::vector<std::atomic<bool>> deleting(built);
  for (auto& flag : deleting) flag.store(false);

  std::thread appender([&] {
    for (size_t i = 0; i < extra.num_docs(); ++i) {
      ASSERT_TRUE(store->Append(extra.doc(i)).ok());
    }
  });
  std::thread deleter([&] {
    for (size_t id = 0; id < built; id += 7) {
      deleting[id].store(true, std::memory_order_release);
      ASSERT_TRUE(store->Delete(id).ok());
    }
  });

  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(2000 + t);
      ServeBatch batch;
      std::vector<size_t> ids(16);
      for (int round = 0; round < 200; ++round) {
        const size_t limit = store->num_docs();
        for (size_t& id : ids) id = rng.Uniform(limit);
        service.SubmitBatch(ids, &batch);
        const std::vector<GetResult>& results = batch.Wait();
        for (size_t i = 0; i < ids.size(); ++i) {
          const size_t id = ids[i];
          if (results[i].ok()) {
            // Served bytes must be the id's true bytes — a delete racing
            // in is fine, but the text can never be torn or swapped.
            ASSERT_EQ(*results[i].text, expected[id]) << "id " << id;
          } else {
            // NotFound requires the delete to have at least started.
            ASSERT_EQ(results[i].status.code(), StatusCode::kNotFound);
            ASSERT_TRUE(id < built &&
                        deleting[id].load(std::memory_order_acquire))
                << "id " << id;
          }
        }
      }
    });
  }

  appender.join();
  deleter.join();
  for (std::thread& client : clients) client.join();
  store->StopCompactor();
  service.Drain();

  // Deletes are fully published: the service must answer NotFound for
  // every deleted id (stale cache entries were erased by the hook or the
  // post-insert recheck).
  for (size_t id = 0; id < built; id += 7) {
    GetResult result = service.Get(id).get();
    EXPECT_EQ(result.status.code(), StatusCode::kNotFound) << "id " << id;
  }
  EXPECT_GT(service.Stats().requests, 0u);
}

}  // namespace
}  // namespace rlz
