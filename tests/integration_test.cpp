// End-to-end tests crossing module boundaries: corpus -> dictionary ->
// archives -> retrieval patterns, mirroring the paper's full pipeline.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rlz.h"
#include "corpus/generator.h"
#include "search/inverted_index.h"
#include "search/query_log.h"
#include "store/ascii_archive.h"
#include "store/blocked_archive.h"

namespace rlz {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusOptions options;
    options.target_bytes = 4 << 20;
    options.seed = 71;
    corpus_ = new Corpus(GenerateCorpus(options));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  static const Corpus* corpus_;
};

const Corpus* PipelineTest::corpus_ = nullptr;

TEST_F(PipelineTest, AllArchivesAgreeOnEveryDocument) {
  const Collection& collection = corpus_->collection;

  RlzOptions rlz_options;
  rlz_options.dict_bytes = 128 << 10;
  auto rlz_archive = CompressCollection(collection, rlz_options);
  AsciiArchive ascii(collection);
  BlockedArchive gz_blocked(collection, GetCompressor(CompressorId::kGzipx),
                            64 << 10);

  std::vector<const Archive*> archives = {rlz_archive.get(), &ascii,
                                          &gz_blocked};
  std::string doc;
  for (size_t i = 0; i < collection.num_docs(); i += 7) {
    for (const Archive* archive : archives) {
      ASSERT_TRUE(archive->Get(i, &doc, nullptr).ok())
          << archive->name() << " doc " << i;
      ASSERT_EQ(doc, collection.doc(i)) << archive->name() << " doc " << i;
    }
  }
}

TEST_F(PipelineTest, RlzBeatsBlockedGzipxOnCrawlOrder) {
  // The paper's headline space result (Tables 4 vs 6): RLZ compression on
  // crawl-ordered web data beats blocked zlib-style compression.
  const Collection& collection = corpus_->collection;
  RlzOptions rlz_options;
  rlz_options.dict_bytes = 128 << 10;
  rlz_options.coding = kZZ;
  auto rlz_archive = CompressCollection(collection, rlz_options);
  BlockedArchive gz(collection, GetCompressor(CompressorId::kGzipx), 64 << 10);
  EXPECT_LT(rlz_archive->stored_bytes(), gz.stored_bytes());
}

TEST_F(PipelineTest, QueryLogPatternRetrievesCorrectDocs) {
  const Collection& collection = corpus_->collection;
  const auto index = InvertedIndex::Build(collection);
  QueryLogOptions qopts;
  qopts.num_queries = 100;
  qopts.cap = 500;
  const auto queries = GenerateQueries(index, qopts);
  const auto pattern = BuildQueryLogPattern(index, queries, qopts);
  ASSERT_FALSE(pattern.empty());

  RlzOptions rlz_options;
  rlz_options.dict_bytes = 64 << 10;
  auto archive = CompressCollection(collection, rlz_options);
  SimDisk disk;
  std::string doc;
  for (uint32_t id : pattern) {
    ASSERT_TRUE(archive->Get(id, &doc, &disk).ok());
    ASSERT_EQ(doc, collection.doc(id));
  }
  EXPECT_GT(disk.seeks(), 0u);
}

TEST_F(PipelineTest, UrlSortingLeavesRlzCompressionUnchanged) {
  // §3.5/§5: because sampling is uniform, RLZ compression is insensitive
  // to document order ("only varying by a fraction of a percent").
  const Corpus sorted = SortByUrl(*corpus_);
  RlzOptions rlz_options;
  rlz_options.dict_bytes = 128 << 10;
  rlz_options.coding = kZV;
  auto crawl = CompressCollection(corpus_->collection, rlz_options);
  auto url = CompressCollection(sorted.collection, rlz_options);
  const double a = static_cast<double>(crawl->stored_bytes());
  const double b = static_cast<double>(url->stored_bytes());
  EXPECT_LT(std::abs(a - b) / a, 0.02);
}

TEST_F(PipelineTest, SequentialPatternIsMostlySeekFreeOnAscii) {
  const Collection& collection = corpus_->collection;
  AsciiArchive ascii(collection);
  const auto pattern = BuildSequentialPattern(collection.num_docs(),
                                              collection.num_docs());
  SimDisk disk;
  std::string doc;
  for (uint32_t id : pattern) {
    ASSERT_TRUE(ascii.Get(id, &doc, &disk).ok());
  }
  // Adjacent documents are adjacent on disk: one initial seek only.
  EXPECT_EQ(disk.seeks(), 1u);
}

TEST_F(PipelineTest, PrefixDictionaryDegradesGracefully) {
  // Table 10's qualitative claim: a dictionary sampled from a 10% prefix
  // loses only a little compression on the full collection.
  const Collection& collection = corpus_->collection;
  auto full_dict = std::shared_ptr<const Dictionary>(
      DictionaryBuilder::BuildSampled(collection.data(), 128 << 10, 1024));
  auto prefix_dict = std::shared_ptr<const Dictionary>(
      DictionaryBuilder::BuildFromPrefix(collection.data(), 0.10, 128 << 10,
                                         1024));
  RlzBuildOptions build;
  build.coding = kZZ;
  auto full = RlzArchive::Build(collection, full_dict, build);
  auto prefix = RlzArchive::Build(collection, prefix_dict, build);
  std::string doc;
  ASSERT_TRUE(prefix->Get(0, &doc, nullptr).ok());
  EXPECT_EQ(doc, collection.doc(0));
  // Degradation bounded: prefix dictionary within 2x of the full one at
  // this tiny scale (the paper sees ~1.1x at full scale).
  EXPECT_LT(prefix->payload_bytes(),
            2.0 * static_cast<double>(full->payload_bytes()));
}

TEST_F(PipelineTest, CoveragePruningKeepsCorrectness) {
  // §6 future work: prune unused dictionary space, re-encode, verify.
  const Collection& collection = corpus_->collection;
  auto dict = std::shared_ptr<const Dictionary>(
      DictionaryBuilder::BuildSampled(collection.data(), 64 << 10, 512));
  RlzBuildOptions build;
  build.track_coverage = true;
  RlzBuildInfo info;
  auto archive = RlzArchive::Build(collection, dict, build, &info);
  ASSERT_EQ(info.coverage.size(), dict->size());

  auto pruned = std::shared_ptr<const Dictionary>(
      DictionaryBuilder::BuildPruned(collection.data(), *dict, info.coverage,
                                     512));
  auto archive2 = RlzArchive::Build(collection, pruned, build);
  std::string doc;
  for (size_t i = 0; i < collection.num_docs(); i += 13) {
    ASSERT_TRUE(archive2->Get(i, &doc, nullptr).ok());
    ASSERT_EQ(doc, collection.doc(i));
  }
}

}  // namespace
}  // namespace rlz
