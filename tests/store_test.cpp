#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "io/sim_disk.h"
#include "store/ascii_archive.h"
#include "store/blocked_archive.h"
#include "store/doc_map.h"

namespace rlz {
namespace {

Collection SmallCollection() {
  CorpusOptions options;
  options.target_bytes = 1 << 20;
  options.seed = 51;
  return GenerateCorpus(options).collection;
}

TEST(DocMapTest, OffsetsAndSizes) {
  DocMap map;
  map.Add(10);
  map.Add(0);
  map.Add(25);
  EXPECT_EQ(map.num_docs(), 3u);
  EXPECT_EQ(map.offset(0), 0u);
  EXPECT_EQ(map.offset(1), 10u);
  EXPECT_EQ(map.offset(2), 10u);
  EXPECT_EQ(map.size(0), 10u);
  EXPECT_EQ(map.size(1), 0u);
  EXPECT_EQ(map.size(2), 25u);
  EXPECT_EQ(map.total_bytes(), 35u);
}

TEST(DocMapTest, SerializedBytesIsVByteSum) {
  DocMap map;
  map.Add(5);     // 1 byte
  map.Add(1000);  // 2 bytes
  map.Add(0);     // 1 byte
  EXPECT_EQ(map.serialized_bytes(), 4u);
}

TEST(DocMapTest, SerializedBytesStaysIncremental) {
  // serialized_bytes() is O(1) (a running total maintained by Add); it must
  // keep agreeing with the recomputed vbyte sum as documents stream in.
  DocMap map;
  EXPECT_EQ(map.serialized_bytes(), 0u);
  const uint64_t sizes[] = {0,   1,    127,        128,       16383,
                            16384, 1 << 21, (1ull << 28) - 1, 1ull << 28};
  uint64_t expected = 0;
  for (uint64_t size : sizes) {
    map.Add(size);
    uint64_t delta = size;
    do {
      ++expected;
      delta >>= 7;
    } while (delta != 0);
    EXPECT_EQ(map.serialized_bytes(), expected);
  }
}

TEST(AsciiArchiveTest, RoundTrip) {
  const Collection collection = SmallCollection();
  AsciiArchive archive(collection);
  ASSERT_EQ(archive.num_docs(), collection.num_docs());
  std::string doc;
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    ASSERT_TRUE(archive.Get(i, &doc, nullptr).ok());
    ASSERT_EQ(doc, collection.doc(i));
  }
  EXPECT_GE(archive.stored_bytes(), collection.size_bytes());
}

TEST(AsciiArchiveTest, OutOfRange) {
  const Collection collection = SmallCollection();
  AsciiArchive archive(collection);
  std::string doc;
  EXPECT_EQ(archive.Get(collection.num_docs(), &doc, nullptr).code(),
            StatusCode::kOutOfRange);
}

class BlockedArchiveTest
    : public ::testing::TestWithParam<std::pair<CompressorId, uint64_t>> {};

TEST_P(BlockedArchiveTest, RoundTripAllDocs) {
  const auto [compressor_id, block_bytes] = GetParam();
  const Collection collection = SmallCollection();
  BlockedArchive archive(collection, GetCompressor(compressor_id),
                         block_bytes);
  ASSERT_EQ(archive.num_docs(), collection.num_docs());
  std::string doc;
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    ASSERT_TRUE(archive.Get(i, &doc, nullptr).ok()) << "doc " << i;
    ASSERT_EQ(doc, collection.doc(i)) << "doc " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BlockedArchiveTest,
    ::testing::Values(std::pair{CompressorId::kGzipx, uint64_t{0}},
                      std::pair{CompressorId::kGzipx, uint64_t{16 << 10}},
                      std::pair{CompressorId::kGzipx, uint64_t{128 << 10}},
                      std::pair{CompressorId::kLzmax, uint64_t{0}},
                      std::pair{CompressorId::kLzmax, uint64_t{64 << 10}}),
    [](const auto& info) {
      std::string name = info.param.first == CompressorId::kGzipx ? "Gzipx"
                                                                  : "Lzmax";
      name += info.param.second == 0
                  ? "OneDocPerBlock"
                  : "Block" + std::to_string(info.param.second >> 10) + "K";
      return name;
    });

TEST(BlockedArchiveTest, EmptyDocumentsIncludingTrailing) {
  // A trailing empty document is recorded against a block that is never
  // flushed (flush() skips empty text); Get must serve it as empty rather
  // than dereference the phantom block index.
  Collection collection;
  collection.Append("x");
  collection.Append("");
  for (const uint64_t block_bytes : {uint64_t{0}, uint64_t{16}}) {
    BlockedArchive archive(collection, GetCompressor(CompressorId::kGzipx),
                           block_bytes);
    std::string doc;
    ASSERT_TRUE(archive.Get(0, &doc).ok());
    EXPECT_EQ(doc, "x");
    ASSERT_TRUE(archive.Get(1, &doc).ok());
    EXPECT_TRUE(doc.empty());
  }
}

TEST(BlockedArchiveTest, OneDocPerBlockHasOneBlockPerDoc) {
  const Collection collection = SmallCollection();
  BlockedArchive archive(collection, GetCompressor(CompressorId::kGzipx), 0);
  EXPECT_EQ(archive.num_blocks(), collection.num_docs());
}

TEST(BlockedArchiveTest, LargerBlocksCompressBetter) {
  const Collection collection = SmallCollection();
  BlockedArchive single(collection, GetCompressor(CompressorId::kGzipx), 0);
  BlockedArchive big(collection, GetCompressor(CompressorId::kGzipx),
                     128 << 10);
  EXPECT_LT(big.stored_bytes(), single.stored_bytes());
  EXPECT_LT(big.num_blocks(), single.num_blocks());
}

TEST(BlockedArchiveTest, NamesEncodeConfiguration) {
  const Collection collection = SmallCollection();
  EXPECT_EQ(
      BlockedArchive(collection, GetCompressor(CompressorId::kGzipx), 0).name(),
      "gzipx-1doc");
  EXPECT_EQ(BlockedArchive(collection, GetCompressor(CompressorId::kLzmax),
                           1 << 20)
                .name(),
            "lzmax-1M");
  EXPECT_EQ(BlockedArchive(collection, GetCompressor(CompressorId::kGzipx),
                           64 << 10)
                .name(),
            "gzipx-64K");
}

TEST(SimDiskTest, SeekChargedOnRandomAccess) {
  SimDiskOptions options;
  options.seek_ms = 10.0;
  options.bandwidth_mb_per_s = 1024.0 / 1.048576;  // ~1 GB/s to isolate seeks
  SimDisk disk(options);
  disk.Read(0, 1000);
  disk.Read(500 << 20, 1000);  // far away: seek
  EXPECT_EQ(disk.seeks(), 2u);
  EXPECT_GT(disk.total_seconds(), 0.019);
}

TEST(SimDiskTest, SequentialReadsSkipSeek) {
  SimDisk disk;
  disk.Read(0, 4096);
  disk.Read(4096, 4096);
  disk.Read(8192, 4096);
  EXPECT_EQ(disk.seeks(), 1u);
}

TEST(SimDiskTest, BackwardReadIsASeek) {
  SimDisk disk;
  disk.Read(1 << 20, 4096);
  disk.Read(0, 4096);
  EXPECT_EQ(disk.seeks(), 2u);
}

TEST(SimDiskTest, BandwidthAccounted) {
  SimDiskOptions options;
  options.seek_ms = 0.0;
  options.bandwidth_mb_per_s = 100.0;
  SimDisk disk(options);
  disk.Read(0, 100 * 1024 * 1024);
  EXPECT_NEAR(disk.total_seconds(), 1.0, 1e-6);
  EXPECT_EQ(disk.total_bytes(), 100ull * 1024 * 1024);
}

TEST(SimDiskTest, ResetClearsState) {
  SimDisk disk;
  disk.Read(0, 1000);
  disk.Reset();
  EXPECT_EQ(disk.total_seconds(), 0.0);
  EXPECT_EQ(disk.seeks(), 0u);
  EXPECT_EQ(disk.total_bytes(), 0u);
}

TEST(BlockedArchiveTest, DiskChargesWholeBlockForOneDoc) {
  const Collection collection = SmallCollection();
  BlockedArchive archive(collection, GetCompressor(CompressorId::kGzipx),
                         256 << 10);
  SimDisk disk;
  std::string doc;
  ASSERT_TRUE(archive.Get(0, &doc, &disk).ok());
  // The read must cover the compressed block, which at 256 KB uncompressed
  // is far larger than any single encoded document.
  EXPECT_GT(disk.total_bytes(), 10u * 1024);
}

TEST(AsciiArchiveTest, DiskChargesOnlyDocBytes) {
  const Collection collection = SmallCollection();
  AsciiArchive archive(collection);
  SimDisk disk;
  std::string doc;
  ASSERT_TRUE(archive.Get(3, &doc, &disk).ok());
  EXPECT_EQ(disk.total_bytes(), collection.doc_size(3));
}

}  // namespace
}  // namespace rlz
