#include <string>

#include <gtest/gtest.h>

#include "grammar/repair.h"
#include "util/random.h"
#include "zip/gzipx.h"

namespace rlz {
namespace {

void ExpectRoundTrip(const RepairCompressor& repair,
                     const std::string& input) {
  std::string compressed;
  repair.Compress(input, &compressed);
  std::string output;
  const Status s = repair.Decompress(compressed, &output);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(output, input);
}

TEST(RepairTest, EmptyAndTiny) {
  const RepairCompressor repair;
  ExpectRoundTrip(repair, "");
  ExpectRoundTrip(repair, "a");
  ExpectRoundTrip(repair, "abcd");
}

TEST(RepairTest, RepetitiveTextRoundTrip) {
  const RepairCompressor repair;
  std::string input;
  for (int i = 0; i < 500; ++i) {
    input += "the cat sat on the mat; ";
  }
  ExpectRoundTrip(repair, input);
}

TEST(RepairTest, SelfOverlappingRuns) {
  const RepairCompressor repair;
  ExpectRoundTrip(repair, std::string(10000, 'a'));
  ExpectRoundTrip(repair, "aaabaaabaaabaaab" + std::string(100, 'a'));
}

TEST(RepairTest, RandomBinaryRoundTrip) {
  const RepairCompressor repair;
  Rng rng(1);
  for (size_t n : {100u, 5000u, 40000u}) {
    std::string input(n, '\0');
    for (auto& c : input) c = static_cast<char>(rng.Uniform(256));
    ExpectRoundTrip(repair, input);
  }
}

TEST(RepairTest, PowerfulCompressionOnRepetitiveInput) {
  // §2.2: "Grammar compressors can achieve powerful compression" — on
  // highly repetitive input Re-Pair + entropy coding should clearly beat
  // plain gzipx, whose 32 KB window cannot see long-range structure and
  // whose phrases are not hierarchical.
  std::string phrase = "x";
  for (int i = 0; i < 14; ++i) phrase += phrase;  // 16 KB of 'x'... too easy;
  std::string input;
  Rng rng(2);
  std::string unit;
  for (int i = 0; i < 64; ++i) {
    unit.push_back(static_cast<char>('a' + rng.Uniform(4)));
  }
  for (int i = 0; i < 2000; ++i) input += unit;  // 128 KB, period 64
  const RepairCompressor repair;
  std::string rp;
  repair.Compress(input, &rp);
  std::string gz;
  GzipxCompressor().Compress(input, &gz);
  EXPECT_LT(rp.size(), gz.size());
  EXPECT_LT(rp.size(), input.size() / 100);
}

TEST(RepairTest, RuleCapRespected) {
  RepairOptions options;
  options.max_rules = 8;
  const RepairCompressor repair(options);
  Rng rng(3);
  std::string input;
  for (int i = 0; i < 3000; ++i) {
    input += "pair" + std::to_string(rng.Uniform(50));
  }
  ExpectRoundTrip(repair, input);
}

TEST(RepairTest, MinFrequencyThreshold) {
  // With a huge threshold no rules form; output degenerates to the gzipx
  // pass over vbyte literals and still round-trips.
  RepairOptions options;
  options.min_pair_frequency = 1u << 30;
  const RepairCompressor repair(options);
  ExpectRoundTrip(repair, "completely ordinary text with repeats repeats");
}

TEST(RepairTest, CorruptionDetected) {
  const RepairCompressor repair;
  std::string compressed;
  repair.Compress("some input some input some input", &compressed);
  std::string out;
  // Bad magic.
  std::string bad = compressed;
  bad[0] = '\0';
  EXPECT_FALSE(repair.Decompress(bad, &out).ok());
  // Flipped payload byte (caught by the inner gzipx CRC).
  bad = compressed;
  bad[bad.size() / 2] ^= 0x20;
  out.clear();
  EXPECT_FALSE(repair.Decompress(bad, &out).ok());
}

TEST(RepairTest, ArbitraryBytesNeverCrash) {
  const RepairCompressor repair;
  Rng rng(4);
  std::string out;
  for (int iter = 0; iter < 200; ++iter) {
    std::string garbage(rng.Uniform(200), '\0');
    for (auto& c : garbage) c = static_cast<char>(rng.Uniform(256));
    if (!garbage.empty()) garbage[0] = static_cast<char>(0xC9);
    out.clear();
    (void)repair.Decompress(garbage, &out);
    EXPECT_LT(out.size(), 100u << 20);
  }
}

}  // namespace
}  // namespace rlz
