// Crash-safe persistence tests (DESIGN.md §12): WAL framing, segment
// rolls, torn-tail truncation, the checkpoint commit protocol, and — the
// heart of the suite — kill-at-every-fsync crash injection through
// FaultFs: the writer is killed at every durability barrier the workload
// crosses, recovery runs against exactly what a fresh process would find
// on disk, and the recovered store must hold every acknowledged mutation
// and nothing that was never appended. The whole file carries the
// `durability` ctest label and runs under ASan in CI.

#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/dictionary.h"
#include "core/rlz_archive.h"
#include "corpus/generator.h"
#include "io/fault_fs.h"
#include "io/file.h"
#include "io/file_system.h"
#include "serve/sharded_store.h"
#include "store/open_archive.h"
#include "store/wal/checkpoint.h"
#include "store/wal/wal_format.h"
#include "store/wal/wal_reader.h"
#include "store/wal/wal_writer.h"
#include "util/random.h"

namespace rlz {
namespace {

Collection TestCollection(size_t target_bytes, uint64_t seed) {
  CorpusOptions options;
  options.target_bytes = target_bytes;
  options.seed = seed;
  return GenerateCorpus(options).collection;
}

// A tiny live store, deterministic for a given collection: crash sweeps
// rebuild it from scratch every iteration.
std::unique_ptr<ShardedStore> TinyStore(const Collection& collection) {
  ShardedStoreOptions options;
  options.num_shards = 2;
  options.dict_bytes = 1 << 12;
  options.live.tail_seal_bytes = 0;  // tests seal explicitly
  return ShardedStore::Build(collection, options);
}

// A fresh (empty) directory under the test temp root, on the real disk.
std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadRaw(const std::string& path) {
  auto raw = ReadFile(path);
  EXPECT_TRUE(raw.ok()) << path;
  return raw.ok() ? std::move(raw).value() : std::string();
}

// The short documents the crash workloads append: small enough that the
// byte-level fuzz sweeps stay fast.
std::vector<std::string> SmallDocs(size_t n) {
  std::vector<std::string> docs;
  for (size_t i = 0; i < n; ++i) {
    docs.push_back("tail document " + std::to_string(i) +
                   " -- the quick brown fox jumps over the lazy dog");
  }
  return docs;
}

// ---------------------------------------------------------------------------
// FaultFs: the crash-injection harness itself

TEST(FaultFsTest, SyncMakesContentPrefixDurable) {
  auto fs = std::make_shared<FaultFs>();
  ASSERT_TRUE(fs->CreateDir("/d").ok());
  auto file_or = fs->Create("/d/f");
  ASSERT_TRUE(file_or.ok());
  auto file = std::move(file_or).value();
  ASSERT_TRUE(file->Append("synced").ok());
  ASSERT_TRUE(file->Sync().ok());
  ASSERT_TRUE(file->Append(" not synced").ok());
  ASSERT_TRUE(fs->SyncDir("/d").ok());  // the *entry* is durable either way

  // The running process sees everything; a post-crash process sees only
  // the synced prefix.
  auto live = fs->Read("/d/f");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(*live, "synced not synced");
  auto clone = fs->DurableClone();
  auto durable = clone->Read("/d/f");
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(*durable, "synced");
}

TEST(FaultFsTest, NamespaceOpsRequireSyncDir) {
  auto fs = std::make_shared<FaultFs>();
  ASSERT_TRUE(fs->CreateDir("/d").ok());
  {
    auto file = std::move(fs->Create("/d/a")).value();
    ASSERT_TRUE(file->Append("aa").ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  // Contents are synced but the directory entry is not: a crash now
  // loses the file entirely.
  EXPECT_FALSE(fs->DurableClone()->Exists("/d/a"));
  ASSERT_TRUE(fs->SyncDir("/d").ok());
  EXPECT_TRUE(fs->DurableClone()->Exists("/d/a"));

  // Rename: visible immediately, durable only after SyncDir.
  ASSERT_TRUE(fs->Rename("/d/a", "/d/b").ok());
  EXPECT_TRUE(fs->Exists("/d/b"));
  auto before = fs->DurableClone();
  EXPECT_TRUE(before->Exists("/d/a"));
  EXPECT_FALSE(before->Exists("/d/b"));
  ASSERT_TRUE(fs->SyncDir("/d").ok());
  auto after = fs->DurableClone();
  EXPECT_FALSE(after->Exists("/d/a"));
  EXPECT_TRUE(after->Exists("/d/b"));
}

TEST(FaultFsTest, CrashBeforeBarrierSyncsNothing) {
  auto fs = std::make_shared<FaultFs>();
  ASSERT_TRUE(fs->CreateDir("/d").ok());
  auto file = std::move(fs->Create("/d/f")).value();
  ASSERT_TRUE(fs->SyncDir("/d").ok());
  ASSERT_TRUE(file->Append("doomed").ok());

  fs->ArmCrash(/*at_sync=*/1, /*before=*/true);
  EXPECT_FALSE(file->Sync().ok());  // the barrier itself fails
  EXPECT_TRUE(fs->crashed());
  EXPECT_FALSE(file->Append("x").ok());  // everything after is dead
  auto clone = fs->DurableClone();
  auto durable = clone->Read("/d/f");
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(*durable, "");  // the doomed bytes never became durable
}

TEST(FaultFsTest, CrashAfterBarrierKeepsThatBarrier) {
  auto fs = std::make_shared<FaultFs>();
  ASSERT_TRUE(fs->CreateDir("/d").ok());
  auto file = std::move(fs->Create("/d/f")).value();
  ASSERT_TRUE(fs->SyncDir("/d").ok());
  ASSERT_TRUE(file->Append("kept").ok());

  fs->ArmCrash(/*at_sync=*/1, /*before=*/false);
  EXPECT_TRUE(file->Sync().ok());  // this barrier completes...
  EXPECT_TRUE(fs->crashed());
  EXPECT_FALSE(file->Sync().ok());  // ...and the next one is dead
  auto durable = fs->DurableClone()->Read("/d/f");
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(*durable, "kept");
}

// ---------------------------------------------------------------------------
// WAL on-disk format

TEST(WalFormatTest, SegmentHeaderRoundTripAndDamage) {
  wal::SegmentHeader header;
  header.generation = 7;
  header.start_lsn = 123456789;
  const std::string encoded = wal::EncodeSegmentHeader(header);
  ASSERT_EQ(encoded.size(), wal::kSegmentHeaderSize);

  auto decoded = wal::DecodeSegmentHeader(encoded, "test");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->generation, 7u);
  EXPECT_EQ(decoded->start_lsn, 123456789u);

  // Truncation, bad magic, and a flipped byte are all Corruption; only a
  // future version is InvalidArgument (an upgrade problem, not damage).
  EXPECT_EQ(wal::DecodeSegmentHeader(
                std::string_view(encoded).substr(0, encoded.size() - 1), "t")
                .status()
                .code(),
            StatusCode::kCorruption);
  std::string bad_magic = encoded;
  bad_magic[0] = 'X';
  EXPECT_EQ(wal::DecodeSegmentHeader(bad_magic, "t").status().code(),
            StatusCode::kCorruption);
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::string flipped = encoded;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x20);
    auto status = wal::DecodeSegmentHeader(flipped, "t").status();
    EXPECT_FALSE(status.ok()) << "byte " << i;
    EXPECT_TRUE(status.code() == StatusCode::kCorruption ||
                status.code() == StatusCode::kInvalidArgument)
        << "byte " << i;
  }
}

TEST(WalFormatTest, RecordFrameRoundTripAndTruncation) {
  const std::string frame =
      wal::EncodeRecord(wal::RecordType::kAppend, "payload bytes");
  wal::ParsedRecord record;
  ASSERT_EQ(wal::ParseRecord(frame, &record), wal::FrameStatus::kOk);
  EXPECT_EQ(record.type, wal::RecordType::kAppend);
  EXPECT_EQ(record.payload, "payload bytes");
  EXPECT_EQ(record.frame_size, frame.size());

  EXPECT_EQ(wal::ParseRecord("", &record), wal::FrameStatus::kEnd);
  // Every proper prefix is torn, never Ok and never a crash.
  for (size_t len = 1; len < frame.size(); ++len) {
    EXPECT_EQ(wal::ParseRecord(std::string_view(frame).substr(0, len),
                               &record),
              wal::FrameStatus::kTorn)
        << "prefix " << len;
  }
  // A flipped payload byte fails the CRC.
  std::string flipped = frame;
  flipped[6] = static_cast<char>(flipped[6] ^ 0x01);
  EXPECT_EQ(wal::ParseRecord(flipped, &record), wal::FrameStatus::kTorn);
  // An unknown type byte is torn even though length and CRC could parse.
  std::string bad_type = frame;
  bad_type[0] = 99;
  EXPECT_EQ(wal::ParseRecord(bad_type, &record), wal::FrameStatus::kTorn);
}

TEST(WalFormatTest, SegmentFileNameRoundTrip) {
  uint64_t seq = 0;
  EXPECT_EQ(wal::SegmentFileName(42), "wal-0000000000000042.log");
  EXPECT_TRUE(wal::ParseSegmentFileName("wal-0000000000000042.log", &seq));
  EXPECT_EQ(seq, 42u);
  EXPECT_FALSE(wal::ParseSegmentFileName("wal-42.log", &seq));
  EXPECT_FALSE(wal::ParseSegmentFileName("wal-00000000000000x2.log", &seq));
  EXPECT_FALSE(wal::ParseSegmentFileName("wal-0000000000000042.tmp", &seq));
  EXPECT_FALSE(wal::ParseSegmentFileName("ckpt-0000000000000001.meta", &seq));
}

// ---------------------------------------------------------------------------
// WalWriter / ReplayWal

// Replays `dir` collecting (lsn, type, payload) triples.
struct ReplayedRecord {
  uint64_t lsn;
  wal::RecordType type;
  std::string payload;
};

StatusOr<wal::ReplayResult> Replay(const std::shared_ptr<FileSystem>& fs,
                                   const std::string& dir,
                                   uint64_t covered_lsn,
                                   std::vector<ReplayedRecord>* out) {
  return wal::ReplayWal(
      fs, dir, covered_lsn,
      [out](uint64_t lsn, wal::RecordType type, std::string_view payload) {
        out->push_back({lsn, type, std::string(payload)});
        return Status::OK();
      });
}

TEST(WalTest, AppendAndReplayRoundTrip) {
  const std::string dir = FreshDir("wal_roundtrip");
  auto fs = DefaultFileSystem();
  wal::WalWriterOptions options;
  auto writer_or = wal::WalWriter::Create(fs, dir, /*generation=*/1,
                                          /*seq=*/0, /*start_lsn=*/0, options);
  ASSERT_TRUE(writer_or.ok()) << writer_or.status().ToString();
  auto writer = std::move(writer_or).value();

  auto lsn0 = writer->Append(wal::RecordType::kAppend, "doc zero");
  ASSERT_TRUE(lsn0.ok());
  EXPECT_EQ(*lsn0, 0u);
  std::string delete_payload;
  wal::PutFixed64(&delete_payload, 3);
  ASSERT_TRUE(writer->Append(wal::RecordType::kDelete, delete_payload).ok());
  auto lsn2 = writer->Append(wal::RecordType::kSeal, "");
  ASSERT_TRUE(lsn2.ok());
  EXPECT_EQ(*lsn2, 2u);
  ASSERT_TRUE(writer->Close().ok());

  std::vector<ReplayedRecord> records;
  auto result = Replay(fs, dir, /*covered_lsn=*/0, &records);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->next_lsn, 3u);
  EXPECT_EQ(result->next_seq, 1u);
  EXPECT_EQ(result->replayed, 3u);
  EXPECT_FALSE(result->torn);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].lsn, 0u);
  EXPECT_EQ(records[0].payload, "doc zero");
  EXPECT_EQ(records[1].type, wal::RecordType::kDelete);
  EXPECT_EQ(records[2].type, wal::RecordType::kSeal);

  // Replaying from a later coverage point skips what the checkpoint holds.
  records.clear();
  result = Replay(fs, dir, /*covered_lsn=*/2, &records);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].lsn, 2u);
}

TEST(WalTest, RollingKeepsEverySegmentReplayable) {
  const std::string dir = FreshDir("wal_roll");
  auto fs = DefaultFileSystem();
  wal::WalWriterOptions options;
  options.segment_bytes = 64;  // force a roll on nearly every append
  auto writer = std::move(wal::WalWriter::Create(fs, dir, 1, 0, 0, options)).value();
  const size_t n = 20;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(writer
                    ->Append(wal::RecordType::kAppend,
                             "record number " + std::to_string(i))
                    .ok());
  }
  EXPECT_GT(writer->segment_seq(), 2u);  // it really rolled
  ASSERT_TRUE(writer->Close().ok());

  std::vector<ReplayedRecord> records;
  auto result = Replay(fs, dir, 0, &records);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->next_lsn, n);
  ASSERT_EQ(records.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(records[i].lsn, i);
    EXPECT_EQ(records[i].payload, "record number " + std::to_string(i));
  }
}

TEST(WalTest, TornFinalFrameTruncatesAndReports) {
  const std::string dir = FreshDir("wal_torn");
  auto fs = DefaultFileSystem();
  auto writer = std::move(wal::WalWriter::Create(fs, dir, 1, 0, 0, {})).value();
  ASSERT_TRUE(writer->Append(wal::RecordType::kAppend, "kept record").ok());
  ASSERT_TRUE(writer->Append(wal::RecordType::kAppend, "torn record").ok());
  ASSERT_TRUE(writer->Close().ok());

  // Tear the last frame: drop its final 3 bytes (inside the CRC).
  const std::string path = dir + "/" + wal::SegmentFileName(0);
  const std::string pristine = ReadRaw(path);
  ASSERT_TRUE(WriteFile(path, std::string_view(pristine)
                                  .substr(0, pristine.size() - 3))
                  .ok());

  std::vector<ReplayedRecord> records;
  auto result = Replay(fs, dir, 0, &records);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->torn);
  EXPECT_EQ(result->next_lsn, 1u);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "kept record");

  // The torn suffix was truncated away in place: a second replay is
  // clean, and the file ends exactly at the last valid frame.
  records.clear();
  result = Replay(fs, dir, 0, &records);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->torn);
  EXPECT_EQ(records.size(), 1u);
}

TEST(WalTest, EveryTruncationOfFinalSegmentRecovers) {
  // Build one segment's bytes in memory, then replay every possible
  // truncation point: recovery must yield exactly the complete-frame
  // prefix (or remove the segment when even the header is gone) — and
  // must never fail or crash on a pure truncation.
  wal::SegmentHeader header;
  header.generation = 1;
  header.start_lsn = 0;
  std::string segment = wal::EncodeSegmentHeader(header);
  std::vector<size_t> frame_ends;  // byte offsets of complete frames
  for (int i = 0; i < 4; ++i) {
    segment += wal::EncodeRecord(wal::RecordType::kAppend,
                                 "record " + std::to_string(i));
    frame_ends.push_back(segment.size());
  }

  for (size_t len = 0; len <= segment.size(); ++len) {
    auto fs = std::make_shared<FaultFs>();
    ASSERT_TRUE(fs->CreateDir("/w").ok());
    {
      auto file = std::move(fs->Create("/w/" + wal::SegmentFileName(0))).value();
      ASSERT_TRUE(file->Append(std::string_view(segment).substr(0, len)).ok());
      ASSERT_TRUE(file->Sync().ok());
    }
    ASSERT_TRUE(fs->SyncDir("/w").ok());

    std::vector<ReplayedRecord> records;
    auto result = Replay(fs, "/w", 0, &records);
    ASSERT_TRUE(result.ok()) << "len " << len << ": "
                             << result.status().ToString();
    if (len < wal::kSegmentHeaderSize) {
      // Crash mid-roll: the unreadable final segment is deleted and its
      // sequence number reused.
      EXPECT_EQ(result->next_seq, 0u) << "len " << len;
      EXPECT_TRUE(records.empty()) << "len " << len;
      EXPECT_FALSE(fs->Exists("/w/" + wal::SegmentFileName(0)))
          << "len " << len;
    } else {
      const size_t complete =
          std::count_if(frame_ends.begin(), frame_ends.end(),
                        [len](size_t end) { return end <= len; });
      EXPECT_EQ(records.size(), complete) << "len " << len;
      EXPECT_EQ(result->next_lsn, complete) << "len " << len;
      const bool on_boundary =
          len == wal::kSegmentHeaderSize ||
          std::find(frame_ends.begin(), frame_ends.end(), len) !=
              frame_ends.end();
      EXPECT_EQ(result->torn, !on_boundary) << "len " << len;
    }
  }
}

TEST(WalTest, DamageInSealedSegmentIsCorruption) {
  const std::string dir = FreshDir("wal_sealed_damage");
  auto fs = DefaultFileSystem();
  wal::WalWriterOptions options;
  options.segment_bytes = 64;
  auto writer = std::move(wal::WalWriter::Create(fs, dir, 1, 0, 0, options)).value();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(writer
                    ->Append(wal::RecordType::kAppend,
                             "padding record " + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(writer->Close().ok());

  // Flip one payload byte in segment 0 — a sealed (non-final) segment.
  const std::string path = dir + "/" + wal::SegmentFileName(0);
  std::string damaged = ReadRaw(path);
  damaged[wal::kSegmentHeaderSize + 8] ^= 0x01;
  ASSERT_TRUE(WriteFile(path, damaged).ok());

  std::vector<ReplayedRecord> records;
  auto result = Replay(fs, dir, 0, &records);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(WalTest, MissingSegmentIsCorruption) {
  const std::string dir = FreshDir("wal_gap");
  auto fs = DefaultFileSystem();
  wal::WalWriterOptions options;
  options.segment_bytes = 64;
  auto writer = std::move(wal::WalWriter::Create(fs, dir, 1, 0, 0, options)).value();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(writer
                    ->Append(wal::RecordType::kAppend,
                             "padding record " + std::to_string(i))
                    .ok());
  }
  const uint64_t last_seq = writer->segment_seq();
  ASSERT_GE(last_seq, 2u);
  ASSERT_TRUE(writer->Close().ok());
  ASSERT_TRUE(fs->Remove(dir + "/" + wal::SegmentFileName(1)).ok());

  std::vector<ReplayedRecord> records;
  auto result = Replay(fs, dir, 0, &records);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Checkpoint protocol primitives

TEST(CheckpointTest, CurrentPointerRoundTrip) {
  auto fs = std::make_shared<FaultFs>();
  ASSERT_TRUE(fs->CreateDir("/c").ok());
  EXPECT_EQ(wal::ReadCurrent(*fs, "/c").status().code(),
            StatusCode::kNotFound);

  wal::CheckpointInfo info;
  info.generation = 3;
  info.covered_lsn = 17;
  info.manifest = wal::CheckpointManifestFileName(3);
  ASSERT_TRUE(wal::WriteCheckpointMeta(*fs, "/c", info).ok());
  ASSERT_TRUE(wal::WriteCurrent(*fs, "/c", 3).ok());

  auto current = wal::ReadCurrent(*fs, "/c");
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, 3u);
  auto read = wal::ReadCheckpointMeta(*fs, "/c", 3);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->covered_lsn, 17u);
  EXPECT_EQ(read->manifest, info.manifest);

  // The swap is atomic: no CURRENT.tmp survives a completed WriteCurrent
  // in the durable view.
  EXPECT_FALSE(fs->DurableClone()->Exists("/c/CURRENT.tmp"));
}

TEST(CheckpointTest, ListCheckpointsSkipsDamagedMetas) {
  auto fs = std::make_shared<FaultFs>();
  ASSERT_TRUE(fs->CreateDir("/c").ok());
  for (uint64_t gen : {1, 2, 3}) {
    wal::CheckpointInfo info;
    info.generation = gen;
    info.covered_lsn = gen * 10;
    info.manifest = wal::CheckpointManifestFileName(gen);
    ASSERT_TRUE(wal::WriteCheckpointMeta(*fs, "/c", info).ok());
  }
  // Damage the newest meta: the scan must skip it and fall back to gen 2.
  {
    auto file = std::move(fs->Create("/c/" + wal::CheckpointMetaFileName(3))).value();
    ASSERT_TRUE(file->Append("garbage").ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  auto list = wal::ListCheckpoints(*fs, "/c");
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 2u);
  EXPECT_EQ((*list)[0].generation, 2u);  // newest readable first
  EXPECT_EQ((*list)[1].generation, 1u);
}

TEST(CheckpointTest, GarbageCollectRemovesSupersededFiles) {
  auto fs = std::make_shared<FaultFs>();
  ASSERT_TRUE(fs->CreateDir("/c").ok());
  auto put = [&](const std::string& name, const std::string& content) {
    auto file = std::move(fs->Create("/c/" + name)).value();
    ASSERT_TRUE(file->Append(content).ok());
    ASSERT_TRUE(file->Sync().ok());
  };
  // Old and new checkpoint generations plus a stale tmp.
  put(wal::CheckpointMetaFileName(1), "old");
  put(wal::CheckpointManifestFileName(1), "old");
  put(wal::CheckpointMetaFileName(2), "new");
  put(wal::CheckpointManifestFileName(2), "new");
  put("CURRENT.tmp", "stale");
  // Three segments: [0,5), [5,9), [9,...). With covered_lsn 9 the first
  // two are fully covered; the final one is live.
  for (uint64_t seq : {0, 1, 2}) {
    wal::SegmentHeader header;
    header.generation = 2;
    header.start_lsn = seq == 0 ? 0 : (seq == 1 ? 5 : 9);
    put(wal::SegmentFileName(seq), wal::EncodeSegmentHeader(header));
  }
  ASSERT_TRUE(fs->SyncDir("/c").ok());

  wal::CheckpointInfo keep;
  keep.generation = 2;
  keep.covered_lsn = 9;
  keep.manifest = wal::CheckpointManifestFileName(2);
  ASSERT_TRUE(wal::GarbageCollect(*fs, "/c", keep).ok());

  EXPECT_FALSE(fs->Exists("/c/" + wal::CheckpointMetaFileName(1)));
  EXPECT_FALSE(fs->Exists("/c/" + wal::CheckpointManifestFileName(1)));
  EXPECT_FALSE(fs->Exists("/c/CURRENT.tmp"));
  EXPECT_FALSE(fs->Exists("/c/" + wal::SegmentFileName(0)));
  EXPECT_FALSE(fs->Exists("/c/" + wal::SegmentFileName(1)));
  EXPECT_TRUE(fs->Exists("/c/" + wal::SegmentFileName(2)));
  EXPECT_TRUE(fs->Exists("/c/" + wal::CheckpointMetaFileName(2)));
  EXPECT_TRUE(fs->Exists("/c/" + wal::CheckpointManifestFileName(2)));
}

// ---------------------------------------------------------------------------
// Durable ShardedStore: round trips on a healthy disk

TEST(RecoveryTest, MakeDurableReopensIdentical) {
  const Collection collection = TestCollection(1 << 14, 201);
  const std::string dir = FreshDir("recovery_basic");
  {
    auto store = TinyStore(collection);
    ASSERT_TRUE(store->MakeDurable(dir).ok());
    EXPECT_TRUE(store->durable());
    EXPECT_FALSE(store->read_only());
    EXPECT_EQ(store->checkpoint_generation(), 1u);
  }
  ShardedStore::RecoveryReport report;
  auto reopened_or = ShardedStore::OpenDurable(dir, {}, {}, nullptr, &report);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();
  EXPECT_EQ(report.generation, 1u);
  EXPECT_EQ(report.replayed_records, 0u);  // empty-WAL recovery
  EXPECT_FALSE(report.torn_tail);
  ASSERT_EQ(reopened->num_docs(), collection.num_docs());
  std::string doc;
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    ASSERT_TRUE(reopened->Get(i, &doc).ok());
    EXPECT_EQ(doc, collection.doc(i));
  }
}

TEST(RecoveryTest, AckedAppendsSurviveReopenWithoutSave) {
  const Collection collection = TestCollection(1 << 14, 211);
  const std::string dir = FreshDir("recovery_appends");
  const std::vector<std::string> docs = SmallDocs(5);
  size_t base = 0;
  {
    auto store = TinyStore(collection);
    base = store->num_docs();
    ASSERT_TRUE(store->MakeDurable(dir).ok());
    for (const std::string& doc : docs) {
      ASSERT_TRUE(store->Append(doc).ok());
    }
    // No Save, no Checkpoint, no clean anything beyond the destructor.
  }
  ShardedStore::RecoveryReport report;
  auto reopened_or = ShardedStore::OpenDurable(dir, {}, {}, nullptr, &report);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();
  EXPECT_EQ(report.replayed_records, docs.size());
  ASSERT_EQ(reopened->num_docs(), base + docs.size());
  std::string doc;
  for (size_t i = 0; i < docs.size(); ++i) {
    ASSERT_TRUE(reopened->Get(base + i, &doc).ok());
    EXPECT_EQ(doc, docs[i]);
  }
}

TEST(RecoveryTest, DeletesAndSealsReplay) {
  const Collection collection = TestCollection(1 << 14, 221);
  const std::string dir = FreshDir("recovery_mixed");
  const std::vector<std::string> docs = SmallDocs(6);
  size_t base = 0;
  int shards_after_seal = 0;
  {
    auto store = TinyStore(collection);
    base = store->num_docs();
    ASSERT_TRUE(store->MakeDurable(dir).ok());
    for (size_t i = 0; i < 3; ++i) ASSERT_TRUE(store->Append(docs[i]).ok());
    ASSERT_TRUE(store->SealTail().ok());
    shards_after_seal = store->num_shards();
    for (size_t i = 3; i < docs.size(); ++i) {
      ASSERT_TRUE(store->Append(docs[i]).ok());
    }
    ASSERT_TRUE(store->Delete(0).ok());         // sealed shard
    ASSERT_TRUE(store->Delete(base + 1).ok());  // sealed tail shard
    ASSERT_TRUE(store->Delete(base + 4).ok());  // open tail
  }
  auto reopened_or = ShardedStore::OpenDurable(dir);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();
  EXPECT_EQ(reopened->num_shards(), shards_after_seal);
  ASSERT_EQ(reopened->num_docs(), base + docs.size());
  std::string doc;
  EXPECT_EQ(reopened->Get(0, &doc).code(), StatusCode::kNotFound);
  EXPECT_EQ(reopened->Get(base + 1, &doc).code(), StatusCode::kNotFound);
  EXPECT_EQ(reopened->Get(base + 4, &doc).code(), StatusCode::kNotFound);
  for (size_t i = 0; i < docs.size(); ++i) {
    if (i == 1 || i == 4) continue;
    ASSERT_TRUE(reopened->Get(base + i, &doc).ok()) << i;
    EXPECT_EQ(doc, docs[i]);
  }
  // The recovered store is live: it can keep mutating durably.
  EXPECT_TRUE(reopened->Append("post-recovery doc").ok());
}

TEST(RecoveryTest, CheckpointPrunesWalAndReopens) {
  const Collection collection = TestCollection(1 << 14, 231);
  const std::string dir = FreshDir("recovery_checkpoint");
  const std::vector<std::string> docs = SmallDocs(4);
  size_t base = 0;
  {
    auto store = TinyStore(collection);
    base = store->num_docs();
    ASSERT_TRUE(store->MakeDurable(dir).ok());
    for (const std::string& doc : docs) ASSERT_TRUE(store->Append(doc).ok());
    ASSERT_TRUE(store->Checkpoint().ok());
    EXPECT_EQ(store->checkpoint_generation(), 2u);
  }
  // After the checkpoint every pre-checkpoint file is pruned: only
  // generation-2 checkpoint files and uncovered WAL remain.
  size_t live_segments = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    uint64_t value = 0;
    if (wal::ParseSegmentFileName(name, &value)) {
      ++live_segments;
    } else if (name.rfind("ckpt-", 0) == 0) {
      EXPECT_NE(name.find("0000000000000002"), std::string::npos) << name;
    }
  }
  EXPECT_EQ(live_segments, 1u);  // just the fresh post-roll segment

  ShardedStore::RecoveryReport report;
  auto reopened_or = ShardedStore::OpenDurable(dir, {}, {}, nullptr, &report);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();
  EXPECT_EQ(report.generation, 2u);
  EXPECT_EQ(report.replayed_records, 0u);  // everything was covered
  ASSERT_EQ(reopened->num_docs(), base + docs.size());
  std::string doc;
  for (size_t i = 0; i < docs.size(); ++i) {
    ASSERT_TRUE(reopened->Get(base + i, &doc).ok());
    EXPECT_EQ(doc, docs[i]);
  }
}

TEST(RecoveryTest, CompactionCheckpointsDurably) {
  // A bigger collection than the crash sweeps use: compaction needs a
  // multi-document shard to tombstone.
  const Collection collection = TestCollection(1 << 18, 241);
  const std::string dir = FreshDir("recovery_compaction");
  size_t shard0_docs = 0;
  uint64_t generation_after = 0;
  {
    ShardedStoreOptions options;
    options.num_shards = 2;
    options.dict_bytes = 1 << 14;
    options.live.compact_tombstone_fraction = 0.10;
    auto store = ShardedStore::Build(collection, options);
    ASSERT_TRUE(store->MakeDurable(dir).ok());
    shard0_docs = store->starts(1);
    ASSERT_GT(shard0_docs, 1u);
    ASSERT_LT(shard0_docs, store->num_docs());
    for (size_t i = 0; i < shard0_docs; ++i) {
      ASSERT_TRUE(store->Delete(i).ok());
    }
    auto report = store->CompactOnce();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report->compacted);
    generation_after = store->checkpoint_generation();
    EXPECT_GE(generation_after, 2u);  // the compaction checkpointed
    std::string live_doc;
    ASSERT_TRUE(store->Get(shard0_docs, &live_doc).ok())
        << "pre-shutdown: " << store->Get(shard0_docs, &live_doc).ToString()
        << " num_docs=" << store->num_docs();
  }
  ShardedStore::RecoveryReport report;
  auto reopened_or = ShardedStore::OpenDurable(dir, {}, {}, nullptr, &report);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();
  EXPECT_EQ(report.generation, generation_after);
  std::string doc;
  EXPECT_EQ(reopened->Get(0, &doc).code(), StatusCode::kNotFound);
  ASSERT_TRUE(reopened->Get(shard0_docs, &doc).ok())
      << reopened->Get(shard0_docs, &doc).ToString()
      << " num_docs=" << reopened->num_docs()
      << " shard0_docs=" << shard0_docs;
  EXPECT_EQ(doc, collection.doc(shard0_docs));
}

TEST(RecoveryTest, ServingOnlyRecoveryIsReadOnly) {
  const Collection collection = TestCollection(1 << 14, 251);
  const std::string dir = FreshDir("recovery_serving_only");
  const std::vector<std::string> docs = SmallDocs(4);
  size_t base = 0;
  {
    auto store = TinyStore(collection);
    base = store->num_docs();
    ASSERT_TRUE(store->MakeDurable(dir).ok());
    for (size_t i = 0; i < 2; ++i) ASSERT_TRUE(store->Append(docs[i]).ok());
    ASSERT_TRUE(store->SealTail().ok());
    for (size_t i = 2; i < docs.size(); ++i) {
      ASSERT_TRUE(store->Append(docs[i]).ok());
    }
  }
  OpenOptions options;
  options.build_suffix_array = false;
  auto reopened_or = ShardedStore::OpenDurable(dir, options);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();
  EXPECT_TRUE(reopened->durable());
  EXPECT_TRUE(reopened->read_only());

  // Same documents, same bytes — the replayed seal is skipped (the tail
  // stays raw) but ids and contents are identical.
  ASSERT_EQ(reopened->num_docs(), base + docs.size());
  std::string doc;
  for (size_t i = 0; i < docs.size(); ++i) {
    ASSERT_TRUE(reopened->Get(base + i, &doc).ok()) << i;
    EXPECT_EQ(doc, docs[i]);
  }
  // Every mutation is disabled, and nothing was written to the dir.
  EXPECT_EQ(reopened->Append("nope").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(reopened->Delete(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reopened->SealTail().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reopened->Checkpoint().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(reopened->CompactOnce().status().code(),
            StatusCode::kInvalidArgument);

  // A full (writable) open of the same directory still works afterwards.
  auto writable_or = ShardedStore::OpenDurable(dir);
  ASSERT_TRUE(writable_or.ok()) << writable_or.status().ToString();
  EXPECT_TRUE((*writable_or)->Append("writable again").ok());
}

TEST(RecoveryTest, MmapOpenServesByteIdentical) {
  const Collection collection = TestCollection(1 << 15, 261);
  const std::string dir = FreshDir("recovery_mmap");

  // Single archive: Save, then Load through mmap.
  auto dict = DictionaryBuilder::BuildSampled(collection.data(), 1 << 12,
                                              1024);
  auto archive = RlzArchive::Build(collection, std::move(dict));
  const std::string path = dir + "/archive.rlz";
  ASSERT_TRUE(archive->Save(path).ok());
  OpenOptions options;
  options.use_mmap = true;
  auto mapped_or = RlzArchive::Load(path, options);
  ASSERT_TRUE(mapped_or.ok()) << mapped_or.status().ToString();
  auto mapped = std::move(mapped_or).value();
  std::string doc;
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    ASSERT_TRUE(mapped->Get(i, &doc).ok());
    EXPECT_EQ(doc, collection.doc(i));
  }

  // Sharded store: the manifest and every shard open through the map.
  auto store = TinyStore(collection);
  const std::string manifest = dir + "/store.sharded";
  ASSERT_TRUE(store->Save(manifest).ok());
  auto reopened_or = ShardedStore::Open(manifest, options);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  auto reopened = std::move(reopened_or).value();
  ASSERT_EQ(reopened->num_docs(), collection.num_docs());
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    ASSERT_TRUE(reopened->Get(i, &doc).ok());
    EXPECT_EQ(doc, collection.doc(i));
  }
}

// ---------------------------------------------------------------------------
// Crash injection: kill the writer at every fsync boundary

// The scripted mixed workload the crash sweeps execute, driving a model
// of the expected state alongside the store. Op kinds: 'A' append the
// next doc, 'D' delete (payload = id), 'S' seal, 'C' checkpoint.
struct ModelOp {
  char kind;
  size_t id = 0;  // kDelete only
};

// The logical corpus a recovered store must match: per-id bytes plus
// deleted flags. Derived by applying a prefix of the op script.
struct Model {
  std::vector<std::string> docs;
  std::vector<bool> deleted;

  static Model Base(const Collection& collection) {
    Model model;
    for (size_t i = 0; i < collection.num_docs(); ++i) {
      model.docs.emplace_back(collection.doc(i));
    }
    model.deleted.assign(model.docs.size(), false);
    return model;
  }

  void Apply(const ModelOp& op, const std::vector<std::string>& tail_docs,
             size_t* next_doc) {
    switch (op.kind) {
      case 'A':
        docs.push_back(tail_docs[(*next_doc)++]);
        deleted.push_back(false);
        break;
      case 'D':
        deleted[op.id] = true;
        break;
      default:  // 'S' and 'C' do not change the logical corpus
        break;
    }
  }
};

// True if `store` serves exactly the model's corpus.
bool MatchesModel(const ShardedStore& store, const Model& model,
                  std::string* why) {
  if (store.num_docs() != model.docs.size()) {
    *why = "num_docs " + std::to_string(store.num_docs()) + " vs model " +
           std::to_string(model.docs.size());
    return false;
  }
  std::string doc;
  for (size_t i = 0; i < model.docs.size(); ++i) {
    const Status status = store.Get(i, &doc);
    if (model.deleted[i]) {
      if (status.code() != StatusCode::kNotFound) {
        *why = "id " + std::to_string(i) + " should be deleted";
        return false;
      }
    } else if (!status.ok()) {
      *why = "id " + std::to_string(i) + ": " + status.ToString();
      return false;
    } else if (doc != model.docs[i]) {
      *why = "id " + std::to_string(i) + " bytes differ";
      return false;
    }
  }
  return true;
}

// Runs the scripted workload against a fresh store on `fs`. Returns the
// number of ops that were acknowledged (the crash, if armed, cuts the
// script short).
size_t RunScript(const std::shared_ptr<FaultFs>& fs,
                 const Collection& collection,
                 const std::vector<ModelOp>& script,
                 const std::vector<std::string>& tail_docs,
                 const wal::WalWriterOptions& wal_options,
                 bool* made_durable) {
  auto store = TinyStore(collection);
  *made_durable = store->MakeDurable("/store", wal_options, fs).ok();
  if (!*made_durable) return 0;
  size_t acked = 0;
  size_t next_doc = 0;
  for (const ModelOp& op : script) {
    Status status;
    switch (op.kind) {
      case 'A':
        status = store->Append(tail_docs[next_doc++]).status();
        break;
      case 'D':
        status = store->Delete(op.id);
        break;
      case 'S':
        status = store->SealTail();
        break;
      case 'C':
        status = store->Checkpoint();
        break;
    }
    if (!status.ok()) break;
    ++acked;
  }
  return acked;
}

// The sweep: run the script once unarmed to learn the barrier count,
// then kill the writer at every barrier K (both entering and leaving the
// barrier) and recover from the durable view. The recovered store must
// match the model after the acked ops — or after acked + 1 when the
// in-flight op's record reached the disk before the crash.
void KillAtEveryFsync(const std::vector<ModelOp>& script,
                      const wal::WalWriterOptions& wal_options,
                      size_t max_lost_ops) {
  const Collection collection = TestCollection(1 << 13, 271);
  const std::vector<std::string> tail_docs = SmallDocs(script.size());

  int total_barriers = 0;
  {
    auto fs = std::make_shared<FaultFs>();
    bool made_durable = false;
    const size_t acked = RunScript(fs, collection, script, tail_docs,
                                   wal_options, &made_durable);
    ASSERT_TRUE(made_durable);
    ASSERT_EQ(acked, script.size());
    total_barriers = fs->sync_count();
  }
  ASSERT_GT(total_barriers, 0);

  for (int k = 1; k <= total_barriers; ++k) {
    for (const bool before : {true, false}) {
      auto fs = std::make_shared<FaultFs>();
      fs->ArmCrash(k, before);
      bool made_durable = false;
      const size_t acked = RunScript(fs, collection, script, tail_docs,
                                     wal_options, &made_durable);
      auto clone = fs->DurableClone();

      auto reopened_or = ShardedStore::OpenDurable(
          "/store", OpenOptions{}, wal_options, clone, nullptr);
      if (!made_durable) {
        // The crash hit inside MakeDurable: either checkpoint 1 never
        // committed (clean failure) or it did (base corpus, no ops).
        if (reopened_or.ok()) {
          Model model = Model::Base(collection);
          std::string why;
          EXPECT_TRUE(MatchesModel(**reopened_or, model, &why))
              << "k=" << k << " before=" << before << ": " << why;
        }
        continue;
      }
      ASSERT_TRUE(reopened_or.ok())
          << "k=" << k << " before=" << before << ": "
          << reopened_or.status().ToString();
      auto reopened = std::move(reopened_or).value();

      // Build the candidate models: everything acked (minus the allowed
      // group-commit loss window) through acked + 1 in-flight op.
      const size_t min_ops = acked > max_lost_ops ? acked - max_lost_ops : 0;
      const size_t max_ops = std::min(acked + 1, script.size());
      bool matched = false;
      std::string last_why;
      Model model = Model::Base(collection);
      size_t next_doc = 0;
      size_t applied = 0;
      for (; applied < min_ops; ++applied) {
        model.Apply(script[applied], tail_docs, &next_doc);
      }
      for (; applied <= max_ops; ++applied) {
        std::string why;
        if (MatchesModel(*reopened, model, &why)) {
          matched = true;
          break;
        }
        last_why = why;
        if (applied < max_ops) {
          model.Apply(script[applied], tail_docs, &next_doc);
        }
      }
      EXPECT_TRUE(matched) << "k=" << k << " before=" << before << " acked="
                           << acked << ": " << last_why;
    }
  }
}

TEST(RecoveryTest, KillAtEveryFsyncDuringAppends) {
  std::vector<ModelOp> script;
  for (int i = 0; i < 5; ++i) script.push_back({'A'});
  KillAtEveryFsync(script, wal::WalWriterOptions{}, /*max_lost_ops=*/0);
}

TEST(RecoveryTest, KillAtEveryFsyncDuringMixedWorkload) {
  // Appends around a seal, deletes in sealed and tail ranges, and a
  // mid-script checkpoint: every fsync boundary of the full durability
  // protocol gets a kill.
  const Collection probe = TestCollection(1 << 13, 271);
  const size_t base = probe.num_docs();
  std::vector<ModelOp> script;
  script.push_back({'A'});
  script.push_back({'A'});
  script.push_back({'D', 0});         // sealed shard of the base corpus
  script.push_back({'S'});            // seal the two appends
  script.push_back({'A'});
  script.push_back({'D', base + 1});  // the sealed tail shard
  script.push_back({'C'});            // checkpoint mid-script
  script.push_back({'A'});
  script.push_back({'D', base + 3});  // the open tail
  KillAtEveryFsync(script, wal::WalWriterOptions{}, /*max_lost_ops=*/0);
}

TEST(RecoveryTest, GroupCommitBoundsLossToUnsyncedBatch) {
  // With fsync_every_n = 4 an acked mutation may be lost — but only the
  // tail batch that never reached a barrier, never more.
  std::vector<ModelOp> script;
  for (int i = 0; i < 8; ++i) script.push_back({'A'});
  wal::WalWriterOptions wal_options;
  wal_options.fsync_every_n = 4;
  KillAtEveryFsync(script, wal_options, /*max_lost_ops=*/3);
}

// ---------------------------------------------------------------------------
// Torn-write and corruption fuzz on the real file system

// Copies a durable store directory so each fuzz iteration mutates a
// pristine replica (recovery itself rewrites files).
void CopyDir(const std::string& from, const std::string& to) {
  std::filesystem::remove_all(to);
  std::filesystem::copy(from, to,
                        std::filesystem::copy_options::recursive);
}

// Builds a durable store directory whose WAL tail holds live records.
// Returns the base doc count.
size_t BuildFuzzFixture(const Collection& collection, const std::string& dir,
                        std::vector<std::string>* docs) {
  *docs = SmallDocs(4);
  auto store = TinyStore(collection);
  const size_t base = store->num_docs();
  EXPECT_TRUE(store->MakeDurable(dir).ok());
  for (const std::string& doc : *docs) {
    EXPECT_TRUE(store->Append(doc).ok());
  }
  EXPECT_TRUE(store->Delete(base + 1).ok());
  return base;
}

// OpenDurable outcome check shared by the fuzz sweeps: the store either
// opens (and serves a self-consistent corpus whose every doc matches the
// attempted sequence) or fails with a clean error — it never crashes and
// never serves garbage bytes.
void CheckFuzzOutcome(const std::string& dir, const Collection& collection,
                      const std::vector<std::string>& docs, size_t base,
                      const std::string& what) {
  auto reopened_or = ShardedStore::OpenDurable(dir);
  if (!reopened_or.ok()) return;  // a clean error is a valid outcome
  auto reopened = std::move(reopened_or).value();
  ASSERT_GE(reopened->num_docs(), base) << what;
  ASSERT_LE(reopened->num_docs(), base + docs.size()) << what;
  std::string doc;
  for (size_t i = 0; i < base; ++i) {
    const Status status = reopened->Get(i, &doc);
    if (status.ok()) {
      ASSERT_EQ(doc, collection.doc(i)) << what << " id " << i;
    }
  }
  for (size_t i = base; i < reopened->num_docs(); ++i) {
    const Status status = reopened->Get(i, &doc);
    if (status.ok()) {
      ASSERT_EQ(doc, docs[i - base]) << what << " id " << i;
    }
  }
}

// The newest WAL segment file in `dir`.
std::string LastSegmentPath(const std::string& dir) {
  uint64_t best_seq = 0;
  std::string best;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    uint64_t seq = 0;
    if (wal::ParseSegmentFileName(name, &seq) &&
        (best.empty() || seq > best_seq)) {
      best_seq = seq;
      best = entry.path().string();
    }
  }
  return best;
}

TEST(RecoveryTest, TornTailFuzzEveryPrefixOfLastSegment) {
  const Collection collection = TestCollection(1 << 13, 281);
  const std::string pristine = FreshDir("fuzz_trunc_pristine");
  std::vector<std::string> docs;
  const size_t base = BuildFuzzFixture(collection, pristine, &docs);
  const std::string segment = LastSegmentPath(pristine);
  ASSERT_FALSE(segment.empty());
  const std::string bytes = ReadRaw(segment);
  ASSERT_GT(bytes.size(), wal::kSegmentHeaderSize);

  const std::string work = testing::TempDir() + "fuzz_trunc_work";
  for (size_t len = 0; len < bytes.size(); ++len) {
    CopyDir(pristine, work);
    const std::string target =
        work + "/" + std::filesystem::path(segment).filename().string();
    ASSERT_TRUE(
        WriteFile(target, std::string_view(bytes).substr(0, len)).ok());
    CheckFuzzOutcome(work, collection, docs, base,
                     "truncated to " + std::to_string(len));
  }
}

TEST(RecoveryTest, ByteFlipFuzzLastSegmentNeverCrashes) {
  const Collection collection = TestCollection(1 << 13, 291);
  const std::string pristine = FreshDir("fuzz_flip_pristine");
  std::vector<std::string> docs;
  const size_t base = BuildFuzzFixture(collection, pristine, &docs);
  const std::string segment = LastSegmentPath(pristine);
  ASSERT_FALSE(segment.empty());
  const std::string bytes = ReadRaw(segment);

  const std::string work = testing::TempDir() + "fuzz_flip_work";
  for (size_t i = 0; i < bytes.size(); ++i) {
    CopyDir(pristine, work);
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    const std::string target =
        work + "/" + std::filesystem::path(segment).filename().string();
    ASSERT_TRUE(WriteFile(target, flipped).ok());
    CheckFuzzOutcome(work, collection, docs, base,
                     "flipped byte " + std::to_string(i));
  }
}

TEST(RecoveryTest, ByteFlipFuzzCurrentFallsBackCleanly) {
  const Collection collection = TestCollection(1 << 13, 301);
  const std::string pristine = FreshDir("fuzz_current_pristine");
  std::vector<std::string> docs;
  const size_t base = BuildFuzzFixture(collection, pristine, &docs);
  const std::string current = pristine + "/" + wal::kCurrentFileName;
  const std::string bytes = ReadRaw(current);

  const std::string work = testing::TempDir() + "fuzz_current_work";
  for (size_t i = 0; i < bytes.size(); ++i) {
    CopyDir(pristine, work);
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    ASSERT_TRUE(
        WriteFile(work + "/" + wal::kCurrentFileName, flipped).ok());
    // A damaged CURRENT falls back to the meta scan, which finds the one
    // complete checkpoint — so this must always open, fully recovered.
    auto reopened_or = ShardedStore::OpenDurable(work);
    ASSERT_TRUE(reopened_or.ok())
        << "flipped byte " << i << ": " << reopened_or.status().ToString();
    auto reopened = std::move(reopened_or).value();
    ASSERT_EQ(reopened->num_docs(), base + docs.size()) << "byte " << i;
    std::string doc;
    ASSERT_TRUE(reopened->Get(base, &doc).ok()) << "byte " << i;
    EXPECT_EQ(doc, docs[0]);
  }
}

TEST(RecoveryTest, MissingCurrentScanFallback) {
  const Collection collection = TestCollection(1 << 13, 311);
  const std::string dir = FreshDir("fuzz_current_missing");
  std::vector<std::string> docs;
  const size_t base = BuildFuzzFixture(collection, dir, &docs);
  ASSERT_TRUE(std::filesystem::remove(dir + "/" + wal::kCurrentFileName));

  auto reopened_or = ShardedStore::OpenDurable(dir);
  ASSERT_TRUE(reopened_or.ok()) << reopened_or.status().ToString();
  EXPECT_EQ((*reopened_or)->num_docs(), base + docs.size());

  // An empty directory, by contrast, is a clean Corruption.
  const std::string empty = FreshDir("fuzz_empty_dir");
  auto empty_or = ShardedStore::OpenDurable(empty);
  ASSERT_FALSE(empty_or.ok());
  EXPECT_EQ(empty_or.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Property test: random interleavings replay byte-identically

TEST(RecoveryTest, RandomInterleavingsReplayByteIdentical) {
  const Collection collection = TestCollection(1 << 14, 321);
  const Collection extra = TestCollection(1 << 13, 322);

  for (const int writers : {1, 2, 4}) {
    const std::string dir =
        FreshDir("recovery_prop_" + std::to_string(writers));
    std::vector<std::string> expected_docs;
    std::vector<bool> expected_deleted;
    {
      auto store = TinyStore(collection);
      ASSERT_TRUE(store->MakeDurable(dir).ok());

      auto worker = [&](int worker_id) {
        Rng rng(1000 * static_cast<uint64_t>(writers) +
                static_cast<uint64_t>(worker_id));
        for (int op = 0; op < 16; ++op) {
          const double dice = rng.NextDouble();
          if (dice < 0.55) {
            (void)store->Append(
                extra.doc(rng.Uniform(extra.num_docs())));
          } else if (dice < 0.80) {
            // Deleting an already-deleted or unknown id fails cleanly;
            // that is part of the interleaving space.
            (void)store->Delete(rng.Uniform(store->num_docs()));
          } else if (dice < 0.92) {
            (void)store->SealTail();
          } else {
            (void)store->CompactOnce();
          }
        }
      };
      std::vector<std::thread> threads;
      for (int w = 0; w < writers; ++w) threads.emplace_back(worker, w);
      for (auto& t : threads) t.join();

      // The pre-shutdown truth, id by id.
      std::string doc;
      for (size_t id = 0; id < store->num_docs(); ++id) {
        const Status status = store->Get(id, &doc);
        if (status.ok()) {
          expected_docs.push_back(doc);
          expected_deleted.push_back(false);
        } else {
          ASSERT_EQ(status.code(), StatusCode::kNotFound) << "id " << id;
          expected_docs.emplace_back();
          expected_deleted.push_back(true);
        }
      }
    }  // clean shutdown

    auto reopened_or = ShardedStore::OpenDurable(dir);
    ASSERT_TRUE(reopened_or.ok())
        << "writers=" << writers << ": " << reopened_or.status().ToString();
    auto reopened = std::move(reopened_or).value();
    ASSERT_EQ(reopened->num_docs(), expected_docs.size())
        << "writers=" << writers;
    std::string doc;
    for (size_t id = 0; id < expected_docs.size(); ++id) {
      const Status status = reopened->Get(id, &doc);
      if (expected_deleted[id]) {
        EXPECT_EQ(status.code(), StatusCode::kNotFound)
            << "writers=" << writers << " id " << id;
      } else {
        ASSERT_TRUE(status.ok())
            << "writers=" << writers << " id " << id << ": "
            << status.ToString();
        EXPECT_EQ(doc, expected_docs[id])
            << "writers=" << writers << " id " << id;
      }
    }
  }
}

}  // namespace
}  // namespace rlz
