// §3.6 dynamic-update machinery: the streaming archive builder and
// dictionary growth by sample appending.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "build/archive_builder.h"
#include "core/rlz.h"
#include "corpus/generator.h"

namespace rlz {
namespace {

Corpus MakeCorpus(uint64_t seed, size_t bytes = 1 << 20) {
  CorpusOptions options;
  options.target_bytes = bytes;
  options.seed = seed;
  return GenerateCorpus(options);
}

TEST(ArchiveBuilderTest, MatchesBatchBuild) {
  const Corpus corpus = MakeCorpus(111);
  auto dict = std::shared_ptr<const Dictionary>(
      DictionaryBuilder::BuildSampled(corpus.collection.data(), 32 << 10,
                                      1024));
  RlzBuildOptions batch_options;
  batch_options.coding = kZV;
  auto batch = RlzArchive::Build(corpus.collection, dict, batch_options);

  RlzArchiveBuilder builder(dict, kZV);
  for (size_t i = 0; i < corpus.collection.num_docs(); ++i) {
    builder.AddDocument(corpus.collection.doc(i));
  }
  EXPECT_GT(builder.stats().num_factors, 0u);
  auto streamed = std::move(builder).Finish();

  ASSERT_EQ(streamed->num_docs(), batch->num_docs());
  EXPECT_EQ(streamed->payload_bytes(), batch->payload_bytes());
  std::string a;
  std::string b;
  for (size_t i = 0; i < streamed->num_docs(); ++i) {
    ASSERT_TRUE(streamed->Get(i, &a).ok());
    ASSERT_TRUE(batch->Get(i, &b).ok());
    ASSERT_EQ(a, b);
    ASSERT_EQ(a, corpus.collection.doc(i));
  }
}

TEST(ArchiveBuilderTest, CoverageTracking) {
  auto dict = std::shared_ptr<const Dictionary>(
      std::make_unique<Dictionary>("abcdefgh"));
  RlzArchiveBuilder builder(dict, kUV, /*track_coverage=*/true);
  builder.AddDocument("abcd");
  EXPECT_DOUBLE_EQ(builder.UnusedDictionaryFraction(), 0.5);
  builder.AddDocument("efgh");
  EXPECT_DOUBLE_EQ(builder.UnusedDictionaryFraction(), 0.0);
  auto archive = std::move(builder).Finish();
  EXPECT_EQ(archive->num_docs(), 2u);
}

TEST(ArchiveBuilderTest, EmptyArchive) {
  auto dict = std::shared_ptr<const Dictionary>(
      std::make_unique<Dictionary>("dictionary"));
  RlzArchiveBuilder builder(dict, kZZ);
  auto archive = std::move(builder).Finish();
  EXPECT_EQ(archive->num_docs(), 0u);
  std::string doc;
  EXPECT_EQ(archive->Get(0, &doc).code(), StatusCode::kOutOfRange);
}

TEST(AppendSamplesTest, OldOffsetsPreserved) {
  const Corpus corpus = MakeCorpus(112);
  const std::string_view data = corpus.collection.data();
  auto base = DictionaryBuilder::BuildSampled(data.substr(0, data.size() / 2),
                                              16 << 10, 512);
  auto grown = DictionaryBuilder::AppendSamples(
      *base, data.substr(data.size() / 2), 16 << 10, 512);
  // The base dictionary is a strict prefix of the grown one (§3.6: "the
  // previous pair codes are still valid").
  ASSERT_GE(grown->size(), base->size());
  EXPECT_EQ(grown->text().substr(0, base->size()), base->text());
}

TEST(AppendSamplesTest, OldEncodingsDecodeAgainstGrownDictionary) {
  const Corpus corpus = MakeCorpus(113);
  const Collection& collection = corpus.collection;
  const std::string_view data = collection.data();

  auto base = std::shared_ptr<const Dictionary>(
      DictionaryBuilder::BuildSampled(data.substr(0, data.size() / 3),
                                      16 << 10, 512));
  // Encode the first third against the base dictionary.
  const FactorCoder coder(kZV);
  Factorizer factorizer(base.get());
  std::vector<std::string> encoded;
  const size_t old_docs = collection.num_docs() / 3;
  for (size_t i = 0; i < old_docs; ++i) {
    std::vector<Factor> factors;
    factorizer.Factorize(collection.doc(i), &factors);
    encoded.emplace_back();
    coder.EncodeDoc(factors, &encoded.back());
  }

  auto grown = std::shared_ptr<const Dictionary>(DictionaryBuilder::AppendSamples(
      *base, data.substr(data.size() / 3), 16 << 10, 512));

  // Old factor streams decode identically against the grown dictionary.
  std::string doc;
  for (size_t i = 0; i < old_docs; ++i) {
    doc.clear();
    ASSERT_TRUE(coder.DecodeDoc(encoded[i], *grown, &doc).ok());
    ASSERT_EQ(doc, collection.doc(i)) << "doc " << i;
  }
}

TEST(AppendSamplesTest, GrownDictionaryImprovesNewDocs) {
  const Corpus corpus = MakeCorpus(114, 2 << 20);
  const Collection& collection = corpus.collection;
  const std::string_view data = collection.data();

  // Base dictionary sees only the first 10%.
  auto base = std::shared_ptr<const Dictionary>(
      DictionaryBuilder::BuildFromPrefix(data, 0.10, 24 << 10, 512));
  auto grown = std::shared_ptr<const Dictionary>(
      DictionaryBuilder::AppendSamples(*base, data.substr(data.size() / 10),
                                       24 << 10, 512));

  RlzBuildOptions build;
  build.coding = kZV;
  auto stale = RlzArchive::Build(collection, base, build);
  auto fresh = RlzArchive::Build(collection, grown, build);
  // The grown dictionary can only help the payload.
  EXPECT_LE(fresh->payload_bytes(), stale->payload_bytes());
}

}  // namespace
}  // namespace rlz
