#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "suffix/lcp.h"
#include "suffix/suffix_array.h"
#include "util/random.h"

namespace rlz {
namespace {

TEST(LcpTest, Banana) {
  const std::string text = "banana";
  const auto sa = BuildSuffixArray(text);
  const auto lcp = BuildLcpArray(text, sa);
  // SA: a(5), ana(3), anana(1), banana(0), na(4), nana(2)
  const std::vector<int32_t> expected = {0, 1, 3, 0, 0, 2};
  EXPECT_EQ(lcp, expected);
}

TEST(LcpTest, EmptyAndSingle) {
  EXPECT_TRUE(BuildLcpArray("", {}).empty());
  const auto lcp = BuildLcpArray("x", BuildSuffixArray("x"));
  EXPECT_EQ(lcp, std::vector<int32_t>{0});
}

TEST(LcpTest, AllSameCharacter) {
  const std::string text(50, 'a');
  const auto sa = BuildSuffixArray(text);
  const auto lcp = BuildLcpArray(text, sa);
  // SA is 49, 48, ..., 0; lcp[i] = i.
  for (int32_t i = 0; i < 50; ++i) EXPECT_EQ(lcp[i], i);
}

struct LcpCase {
  const char* name;
  size_t len;
  int alphabet;
};

class LcpMatchesNaiveTest : public ::testing::TestWithParam<LcpCase> {};

TEST_P(LcpMatchesNaiveTest, MatchesNaive) {
  const LcpCase& c = GetParam();
  Rng rng(c.len * 7 + c.alphabet);
  for (int iter = 0; iter < 6; ++iter) {
    std::string text(c.len, '\0');
    for (auto& ch : text) {
      ch = static_cast<char>('a' + rng.Uniform(c.alphabet));
    }
    const auto sa = BuildSuffixArray(text);
    EXPECT_EQ(BuildLcpArray(text, sa), BuildLcpArrayNaive(text, sa))
        << c.name << " iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LcpMatchesNaiveTest,
    ::testing::Values(LcpCase{"binary_small", 64, 2},
                      LcpCase{"binary_medium", 500, 2},
                      LcpCase{"quaternary", 400, 4},
                      LcpCase{"english", 1200, 26}),
    [](const auto& info) { return info.param.name; });

TEST(RepeatStatsTest, UniqueTextHasNoRepeats) {
  const std::string text = "abcdefghijklmnopqrstuvwxyz";
  const auto sa = BuildSuffixArray(text);
  const RepeatStats stats = ComputeRepeatStats(text, sa, 2);
  EXPECT_EQ(stats.max_lcp, 0);
  EXPECT_DOUBLE_EQ(stats.repeat_fraction, 0.0);
}

TEST(RepeatStatsTest, DuplicatedBlockIsDetected) {
  Rng rng(3);
  std::string block(200, '\0');
  for (auto& c : block) c = static_cast<char>('a' + rng.Uniform(26));
  const std::string text = block + block;
  const auto sa = BuildSuffixArray(text);
  const RepeatStats stats = ComputeRepeatStats(text, sa, 16);
  // Half the suffixes (those in the first copy) share >= 16 bytes with
  // their twin in the second copy.
  EXPECT_GT(stats.repeat_fraction, 0.8);
  EXPECT_GE(stats.max_lcp, 200);
}

TEST(RepeatStatsTest, ThresholdMonotonicity) {
  Rng rng(4);
  std::string text;
  const std::string phrase = "the common phrase here ";
  for (int i = 0; i < 40; ++i) {
    text += phrase;
    for (int k = 0; k < 10; ++k) {
      text.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
  }
  const auto sa = BuildSuffixArray(text);
  const double f4 = ComputeRepeatStats(text, sa, 4).repeat_fraction;
  const double f16 = ComputeRepeatStats(text, sa, 16).repeat_fraction;
  const double f64 = ComputeRepeatStats(text, sa, 64).repeat_fraction;
  EXPECT_GE(f4, f16);
  EXPECT_GE(f16, f64);
  EXPECT_GT(f16, 0.0);
}

TEST(RepeatStatsTest, EmptyText) {
  const RepeatStats stats = ComputeRepeatStats("", {}, 4);
  EXPECT_DOUBLE_EQ(stats.mean_lcp, 0.0);
}

}  // namespace
}  // namespace rlz
