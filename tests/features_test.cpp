// Tests for library features beyond the paper's core pipeline: range
// decoding (snippet fast path) and multi-threaded archive construction.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/rlz.h"
#include "corpus/generator.h"
#include "util/random.h"

namespace rlz {
namespace {

class RangeDecodeTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() {
    CorpusOptions options;
    options.target_bytes = 1 << 20;
    options.seed = 101;
    collection_ = new Collection(GenerateCorpus(options).collection);
  }
  static void TearDownTestSuite() {
    delete collection_;
    collection_ = nullptr;
  }
  static const Collection* collection_;
};

const Collection* RangeDecodeTest::collection_ = nullptr;

TEST_P(RangeDecodeTest, MatchesSubstrEverywhere) {
  RlzOptions options;
  options.dict_bytes = 32 << 10;
  options.coding = *PairCoding::FromName(GetParam());
  auto archive = CompressCollection(*collection_, options);

  Rng rng(7);
  std::string range;
  for (int trial = 0; trial < 200; ++trial) {
    const size_t id = rng.Uniform(collection_->num_docs());
    const std::string_view doc = collection_->doc(id);
    if (doc.empty()) continue;
    const size_t offset = rng.Uniform(doc.size());
    const size_t length = 1 + rng.Uniform(400);
    ASSERT_TRUE(archive->GetRange(id, offset, length, &range).ok());
    ASSERT_EQ(range, doc.substr(offset, length))
        << "doc " << id << " [" << offset << ", +" << length << ")";
  }
}

TEST_P(RangeDecodeTest, WholeDocAndEdges) {
  RlzOptions options;
  options.dict_bytes = 32 << 10;
  options.coding = *PairCoding::FromName(GetParam());
  auto archive = CompressCollection(*collection_, options);
  const std::string_view doc = collection_->doc(0);
  std::string range;
  // Whole document.
  ASSERT_TRUE(archive->GetRange(0, 0, doc.size(), &range).ok());
  EXPECT_EQ(range, doc);
  // Zero-length range.
  ASSERT_TRUE(archive->GetRange(0, 10, 0, &range).ok());
  EXPECT_EQ(range, "");
  // Range past the end clamps.
  ASSERT_TRUE(archive->GetRange(0, doc.size() - 5, 100, &range).ok());
  EXPECT_EQ(range, doc.substr(doc.size() - 5));
  // Offset past the end yields empty.
  ASSERT_TRUE(archive->GetRange(0, doc.size() + 10, 10, &range).ok());
  EXPECT_EQ(range, "");
  // Bad id.
  EXPECT_EQ(archive->GetRange(1u << 30, 0, 1, &range).code(),
            StatusCode::kOutOfRange);
}

INSTANTIATE_TEST_SUITE_P(Codings, RangeDecodeTest,
                         ::testing::Values("ZZ", "ZV", "UZ", "UV"),
                         [](const auto& info) { return info.param; });

class ParallelBuildTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelBuildTest, BitIdenticalToSingleThread) {
  CorpusOptions corpus_options;
  corpus_options.target_bytes = 2 << 20;
  corpus_options.seed = 102;
  const Corpus corpus = GenerateCorpus(corpus_options);

  std::shared_ptr<const Dictionary> dict = DictionaryBuilder::BuildSampled(
      corpus.collection.data(), 64 << 10, 1024);

  RlzBuildOptions serial;
  serial.coding = kZV;
  serial.track_coverage = true;
  RlzBuildInfo serial_info;
  auto baseline = RlzArchive::Build(corpus.collection, dict, serial,
                                    &serial_info);

  RlzBuildOptions parallel = serial;
  parallel.num_threads = GetParam();
  RlzBuildInfo parallel_info;
  auto archive = RlzArchive::Build(corpus.collection, dict, parallel,
                                   &parallel_info);

  ASSERT_EQ(archive->num_docs(), baseline->num_docs());
  EXPECT_EQ(archive->payload_bytes(), baseline->payload_bytes());
  EXPECT_EQ(archive->stored_bytes(), baseline->stored_bytes());
  EXPECT_EQ(parallel_info.stats.num_factors, serial_info.stats.num_factors);
  EXPECT_EQ(parallel_info.stats.text_bytes, serial_info.stats.text_bytes);
  EXPECT_EQ(parallel_info.coverage, serial_info.coverage);

  std::string a;
  std::string b;
  for (size_t i = 0; i < archive->num_docs(); i += 5) {
    ASSERT_TRUE(archive->Get(i, &a).ok());
    ASSERT_TRUE(baseline->Get(i, &b).ok());
    ASSERT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelBuildTest,
                         ::testing::Values(2, 3, 8, 64),
                         [](const auto& info) {
                           return "Threads" + std::to_string(info.param);
                         });

TEST(ParallelBuildTest, MoreThreadsThanDocs) {
  Collection c;
  c.Append("just one doc");
  c.Append("and another");
  RlzBuildOptions options;
  options.num_threads = 16;
  auto dict = std::shared_ptr<const Dictionary>(
      DictionaryBuilder::BuildSampled(c.data(), 1 << 10, 64));
  auto archive = RlzArchive::Build(c, dict, options);
  ASSERT_EQ(archive->num_docs(), 2u);
  std::string doc;
  ASSERT_TRUE(archive->Get(0, &doc).ok());
  EXPECT_EQ(doc, "just one doc");
}

}  // namespace
}  // namespace rlz
