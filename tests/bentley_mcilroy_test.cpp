#include <string>

#include <gtest/gtest.h>

#include "util/random.h"
#include "zip/bentley_mcilroy.h"
#include "zip/gzipx.h"

namespace rlz {
namespace {

std::string RandomBytes(Rng& rng, size_t n) {
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>(rng.Uniform(256));
  return s;
}

void ExpectPreRoundTrip(const BmPreprocessor& pre, const std::string& input) {
  std::string tokens;
  pre.Encode(input, &tokens);
  std::string output;
  const Status s = pre.Decode(tokens, &output);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(output, input);
}

TEST(BmPreprocessorTest, EmptyAndTiny) {
  const BmPreprocessor pre;
  ExpectPreRoundTrip(pre, "");
  ExpectPreRoundTrip(pre, "x");
  ExpectPreRoundTrip(pre, "short string");
}

TEST(BmPreprocessorTest, RandomRoundTrip) {
  const BmPreprocessor pre;
  Rng rng(1);
  for (size_t n : {100u, 1000u, 65536u}) {
    ExpectPreRoundTrip(pre, RandomBytes(rng, n));
  }
}

TEST(BmPreprocessorTest, LongRangeDuplicateShrinks) {
  Rng rng(2);
  const std::string chunk = RandomBytes(rng, 50000);
  const std::string filler = RandomBytes(rng, 200000);
  const std::string input = chunk + filler + chunk;  // repeat 250 KB apart
  const BmPreprocessor pre;
  std::string tokens;
  pre.Encode(input, &tokens);
  // The second copy of chunk must collapse to a single (dist, len) group.
  EXPECT_LT(tokens.size(), input.size() - chunk.size() + 1024);
  std::string output;
  ASSERT_TRUE(pre.Decode(tokens, &output).ok());
  EXPECT_EQ(output, input);
}

TEST(BmPreprocessorTest, ShortRepeatsLeftToSecondPass) {
  // Repeats shorter than the fingerprint block are NOT replaced — by
  // design they are the second-pass compressor's job.
  const BmPreprocessor pre(32);
  const std::string input = "abcabcabcabcabc";  // 5x3 bytes
  std::string tokens;
  pre.Encode(input, &tokens);
  // vbyte total + one literal group (lit_len + bytes + end marker).
  EXPECT_GE(tokens.size(), input.size());
  std::string output;
  ASSERT_TRUE(pre.Decode(tokens, &output).ok());
  EXPECT_EQ(output, input);
}

TEST(BmPreprocessorTest, BlockSizeVariants) {
  Rng rng(3);
  const std::string page = RandomBytes(rng, 4096);
  std::string input;
  for (int i = 0; i < 20; ++i) {
    input += page;
    input += RandomBytes(rng, 512);
  }
  for (int b : {8, 16, 32, 64}) {
    const BmPreprocessor pre(b);
    std::string tokens;
    pre.Encode(input, &tokens);
    EXPECT_LT(tokens.size(), input.size() / 2) << "block " << b;
    std::string output;
    ASSERT_TRUE(pre.Decode(tokens, &output).ok());
    EXPECT_EQ(output, input);
  }
}

TEST(BmPreprocessorTest, DecodeRejectsGarbage) {
  const BmPreprocessor pre;
  std::string output;
  // Claims 1000 bytes of output but provides no groups.
  std::string bad;
  bad.push_back(static_cast<char>(0xE8));  // vbyte 1000 = E8 07
  bad.push_back(0x07);
  EXPECT_FALSE(pre.Decode(bad, &output).ok());
  // Copy distance beyond what has been produced.
  output.clear();
  std::string bad2;
  bad2.push_back(5);   // total = 5
  bad2.push_back(1);   // lit_len = 1
  bad2.push_back('a');
  bad2.push_back(4);   // copy_len = 4
  bad2.push_back(9);   // dist = 9 > produced 1
  EXPECT_FALSE(pre.Decode(bad2, &output).ok());
}

TEST(BigtableCompressorTest, RoundTrip) {
  const BigtableCompressor bt;
  Rng rng(4);
  const std::string page = RandomBytes(rng, 30000);
  std::string input = page + RandomBytes(rng, 100000) + page;
  std::string compressed;
  bt.Compress(input, &compressed);
  std::string output;
  ASSERT_TRUE(bt.Decompress(compressed, &output).ok());
  EXPECT_EQ(output, input);
}

TEST(BigtableCompressorTest, BeatsPlainGzipxOnLongRangeRedundancy) {
  // The Bigtable rationale (§2.2): the BM pass reaches repeats the 32 KB
  // window cannot.
  Rng rng(5);
  const std::string chunk = RandomBytes(rng, 60000);
  std::string input;
  for (int i = 0; i < 6; ++i) {
    input += chunk;
    input += RandomBytes(rng, 50000);
  }
  std::string bt_out;
  BigtableCompressor().Compress(input, &bt_out);
  std::string gz_out;
  GzipxCompressor().Compress(input, &gz_out);
  EXPECT_LT(bt_out.size(), gz_out.size() * 0.7);
}

TEST(BigtableCompressorTest, DetectsCorruption) {
  const BigtableCompressor bt;
  std::string compressed;
  bt.Compress(std::string(5000, 'w') + "unique tail", &compressed);
  compressed[compressed.size() / 2] ^= 0x10;
  std::string output;
  EXPECT_FALSE(bt.Decompress(compressed, &output).ok());
}

}  // namespace
}  // namespace rlz
