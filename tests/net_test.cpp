// Network front-end tests (DESIGN.md §13): the wire protocol's strict
// incremental parser (truncation, garbage, lying lengths, CRC), and the
// epoll DocServer end to end over real loopback sockets — pipelined
// multi-connection byte-identity against direct DocService calls,
// poisoned-connection isolation, read backpressure, graceful drain with
// requests in flight, and the Stat command. The multi-threaded tests run
// under ThreadSanitizer via the `concurrency` ctest label.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "net/doc_server.h"
#include "net/net_client.h"
#include "net/protocol.h"
#include "serve/doc_service.h"
#include "serve/sharded_store.h"
#include "util/random.h"

namespace rlz {
namespace net {
namespace {

Collection TestCollection(size_t target_bytes, uint64_t seed) {
  CorpusOptions options;
  options.target_bytes = target_bytes;
  options.seed = seed;
  return GenerateCorpus(options).collection;
}

// ---------------------------------------------------------------------------
// Protocol: encoders against the strict parser.

// Runs one encoded buffer through ParseFrame + DecodeRequestBody.
Status ParseRequest(const std::string& wire, NetRequest* out) {
  MessageType type;
  uint8_t flags;
  std::string_view body;
  size_t consumed = 0;
  std::string error;
  const ParseResult r =
      ParseFrame(wire, &type, &flags, &body, &consumed, &error);
  if (r != ParseResult::kFrame) return Status::InvalidArgument(error);
  EXPECT_EQ(consumed, wire.size());
  return DecodeRequestBody(type, flags, body, out);
}

ParseResult ParseOnly(std::string_view wire) {
  MessageType type;
  uint8_t flags;
  std::string_view body;
  size_t consumed = 0;
  std::string error;
  return ParseFrame(wire, &type, &flags, &body, &consumed, &error);
}

TEST(ProtocolTest, RequestRoundTrips) {
  for (const bool crc : {false, true}) {
    SCOPED_TRACE(crc ? "crc" : "plain");
    std::string wire;
    NetRequest req;

    wire.clear();
    EncodeGetRequest(42, crc, &wire);
    ASSERT_TRUE(ParseRequest(wire, &req).ok());
    EXPECT_EQ(req.type, MessageType::kGet);
    EXPECT_EQ(req.id, 42u);

    wire.clear();
    const std::vector<uint64_t> ids = {0, 7, 1u << 20, ~0ull};
    EncodeMultiGetRequest(ids.data(), ids.size(), crc, &wire);
    ASSERT_TRUE(ParseRequest(wire, &req).ok());
    EXPECT_EQ(req.type, MessageType::kMultiGet);
    EXPECT_EQ(req.ids, ids);

    wire.clear();
    EncodeGetRangeRequest(9, 100, 400, crc, &wire);
    ASSERT_TRUE(ParseRequest(wire, &req).ok());
    EXPECT_EQ(req.type, MessageType::kGetRange);
    EXPECT_EQ(req.id, 9u);
    EXPECT_EQ(req.offset, 100u);
    EXPECT_EQ(req.length, 400u);

    wire.clear();
    EncodeStatRequest(crc, &wire);
    ASSERT_TRUE(ParseRequest(wire, &req).ok());
    EXPECT_EQ(req.type, MessageType::kStat);
  }
}

TEST(ProtocolTest, PriorityAndDeadlineRoundTrip) {
  for (const bool crc : {false, true}) {
    SCOPED_TRACE(crc ? "crc" : "plain");
    std::string wire;
    NetRequest req;

    // High priority + deadline on every request kind that carries them.
    RequestOptions opts;
    opts.crc = crc;
    opts.priority = RequestPriority::kHigh;
    opts.deadline_ms = 750;
    wire.clear();
    EncodeGetRequest(42, opts, &wire);
    ASSERT_TRUE(ParseRequest(wire, &req).ok());
    EXPECT_EQ(req.priority, RequestPriority::kHigh);
    EXPECT_EQ(req.deadline_ms, 750u);
    EXPECT_EQ(req.id, 42u);

    opts.priority = RequestPriority::kBestEffort;
    opts.deadline_ms = 0;
    wire.clear();
    EncodeGetRangeRequest(9, 100, 400, opts, &wire);
    ASSERT_TRUE(ParseRequest(wire, &req).ok());
    EXPECT_EQ(req.priority, RequestPriority::kBestEffort);
    EXPECT_EQ(req.deadline_ms, 0u);
    EXPECT_EQ(req.offset, 100u);

    const std::vector<uint64_t> ids = {1, 2, 3};
    opts.priority = RequestPriority::kBestEffort;
    opts.deadline_ms = 1;
    wire.clear();
    EncodeMultiGetRequest(ids.data(), ids.size(), opts, &wire);
    ASSERT_TRUE(ParseRequest(wire, &req).ok());
    EXPECT_EQ(req.priority, RequestPriority::kBestEffort);
    EXPECT_EQ(req.deadline_ms, 1u);
    EXPECT_EQ(req.ids, ids);

    // The v1 encoders map to normal priority, no deadline — an old
    // client is indistinguishable from a normal-class one.
    wire.clear();
    EncodeGetRequest(7, crc, &wire);
    ASSERT_TRUE(ParseRequest(wire, &req).ok());
    EXPECT_EQ(req.priority, RequestPriority::kNormal);
    EXPECT_EQ(req.deadline_ms, 0u);
  }
}

TEST(ProtocolTest, ReservedPriorityAndTruncatedDeadlineAreErrors) {
  NetRequest req;
  // Wire priority 3 is reserved: the frame parses (the flags byte is
  // known) but the body decode rejects it.
  const uint8_t reserved = static_cast<uint8_t>(3 << kFlagPriorityShift);
  std::string body(8, '\0');  // a valid Get payload
  EXPECT_FALSE(
      DecodeRequestBody(MessageType::kGet, reserved, body, &req).ok());
  // kFlagDeadline promises a u32 prefix the payload does not carry.
  EXPECT_FALSE(DecodeRequestBody(MessageType::kGet, kFlagDeadline,
                                 std::string(2, '\0'), &req)
                   .ok());
  // With the prefix present, the same frame decodes.
  std::string with_deadline;
  const uint32_t deadline_ms = 250;
  with_deadline.append(reinterpret_cast<const char*>(&deadline_ms),
                       sizeof(deadline_ms));
  with_deadline.append(8, '\0');
  EXPECT_TRUE(DecodeRequestBody(MessageType::kGet, kFlagDeadline,
                                with_deadline, &req)
                  .ok());
  EXPECT_EQ(req.deadline_ms, 250u);
}

TEST(ProtocolTest, RejectResponsesCarryRetryAfterOnEveryType) {
  // A shed/rejected response of any request type round-trips its code,
  // message, and retry-after hint — including MultiGet and Stat, whose
  // OK layouts differ completely.
  for (const MessageType type :
       {MessageType::kGet, MessageType::kGetRange, MessageType::kMultiGet,
        MessageType::kStat}) {
    SCOPED_TRACE(static_cast<int>(type));
    std::string wire;
    EncodeRejectResponse(type, WireCode::kUnavailable, 321, "overloaded",
                         /*crc=*/true, &wire);
    MessageType parsed_type;
    uint8_t flags;
    std::string_view body;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ParseFrame(wire, &parsed_type, &flags, &body, &consumed,
                         &error),
              ParseResult::kFrame);
    NetResponse resp;
    ASSERT_TRUE(DecodeResponseBody(parsed_type, flags, body, &resp).ok());
    EXPECT_EQ(resp.type, type);
    EXPECT_EQ(resp.code, WireCode::kUnavailable);
    EXPECT_EQ(resp.retry_after_ms, 321u);
    EXPECT_EQ(resp.payload, "overloaded");
  }
  // kDeadlineExceeded is a legal wire code in both directions.
  std::string wire;
  EncodeDocResponse(MessageType::kGet, WireCode::kDeadlineExceeded,
                    "expired in queue", /*crc=*/false, &wire);
  MessageType type;
  uint8_t flags;
  std::string_view body;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseFrame(wire, &type, &flags, &body, &consumed, &error),
            ParseResult::kFrame);
  NetResponse resp;
  ASSERT_TRUE(DecodeResponseBody(type, flags, body, &resp).ok());
  EXPECT_EQ(resp.code, WireCode::kDeadlineExceeded);
  EXPECT_EQ(resp.payload, "expired in queue");
}

TEST(NetClientTest, RetryBackoffPolicy) {
  Rng rng(7);
  // Grows exponentially from base, jittered into [nominal/2, nominal].
  for (int attempt = 0; attempt < 7; ++attempt) {
    const uint64_t nominal =
        std::min<uint64_t>(250, uint64_t{2} << attempt);
    for (int trial = 0; trial < 32; ++trial) {
      const uint32_t delay = RetryBackoffMs(attempt, 2, 250, 0, &rng);
      EXPECT_GE(delay, nominal / 2) << "attempt " << attempt;
      EXPECT_LE(delay, nominal) << "attempt " << attempt;
    }
  }
  // Saturates at the cap — even for shift-overflowing attempt counts.
  EXPECT_LE(RetryBackoffMs(31, 2, 250, 0, &rng), 250u);
  EXPECT_LE(RetryBackoffMs(40, 2, 250, 0, &rng), 250u);
  EXPECT_GE(RetryBackoffMs(40, 2, 250, 0, &rng), 125u);
  // The server's retry-after hint is a floor on the jittered value.
  for (int trial = 0; trial < 16; ++trial) {
    EXPECT_GE(RetryBackoffMs(0, 2, 250, 100, &rng), 100u);
  }
  // A zero-everything call still waits at least a millisecond.
  EXPECT_GE(RetryBackoffMs(0, 0, 0, 0, &rng), 1u);
}

TEST(ProtocolTest, BackToBackFramesParseIndividually) {
  std::string wire;
  EncodeGetRequest(1, false, &wire);
  const size_t first = wire.size();
  EncodeGetRequest(2, true, &wire);

  MessageType type;
  uint8_t flags;
  std::string_view body;
  size_t consumed = 0;
  std::string error;
  ASSERT_EQ(ParseFrame(wire, &type, &flags, &body, &consumed, &error),
            ParseResult::kFrame);
  EXPECT_EQ(consumed, first);
  ASSERT_EQ(ParseFrame(std::string_view(wire).substr(consumed), &type, &flags,
                       &body, &consumed, &error),
            ParseResult::kFrame);
  EXPECT_EQ(consumed, wire.size() - first);
  EXPECT_EQ(flags & kFlagCrc, kFlagCrc);
}

TEST(ProtocolTest, ResponseRoundTrips) {
  for (const bool crc : {false, true}) {
    SCOPED_TRACE(crc ? "crc" : "plain");
    std::string wire;
    NetResponse resp;

    // Document response, OK.
    wire.clear();
    EncodeDocResponse(MessageType::kGet, WireCode::kOk, "the doc", crc,
                      &wire);
    MessageType type;
    uint8_t flags;
    std::string_view body;
    size_t consumed = 0;
    std::string error;
    ASSERT_EQ(ParseFrame(wire, &type, &flags, &body, &consumed, &error),
              ParseResult::kFrame);
    ASSERT_TRUE(DecodeResponseBody(type, flags, body, &resp).ok());
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp.payload, "the doc");

    // Document response, error code + message.
    wire.clear();
    EncodeDocResponse(MessageType::kGetRange, WireCode::kNotFound, "gone",
                      crc, &wire);
    ASSERT_EQ(ParseFrame(wire, &type, &flags, &body, &consumed, &error),
              ParseResult::kFrame);
    ASSERT_TRUE(DecodeResponseBody(type, flags, body, &resp).ok());
    EXPECT_EQ(resp.code, WireCode::kNotFound);
    EXPECT_EQ(resp.payload, "gone");

    // MultiGet response with mixed per-element codes.
    wire.clear();
    const MultiGetOut elements[] = {
        {WireCode::kOk, "alpha"},
        {WireCode::kNotFound, "no such doc"},
        {WireCode::kOk, ""},
    };
    EncodeMultiGetResponse(elements, 3, crc, &wire);
    ASSERT_EQ(ParseFrame(wire, &type, &flags, &body, &consumed, &error),
              ParseResult::kFrame);
    ASSERT_TRUE(DecodeResponseBody(type, flags, body, &resp).ok());
    EXPECT_TRUE(resp.ok());
    ASSERT_EQ(resp.elements.size(), 3u);
    EXPECT_EQ(resp.elements[0].bytes, "alpha");
    EXPECT_EQ(resp.elements[1].code, WireCode::kNotFound);
    EXPECT_EQ(resp.elements[1].bytes, "no such doc");
    EXPECT_EQ(resp.elements[2].bytes, "");

    // Stat response: every field survives the trip.
    wire.clear();
    WireStats stats;
    stats.requests = 101;
    stats.failures = 2;
    stats.steals = 3;
    stats.queued = 4;
    stats.cache_hits = 5;
    stats.cache_bytes = 1 << 20;
    stats.archive_docs = 455;
    stats.disk_seconds = 0.25;
    stats.latency_p99_us = 1234.5;
    stats.num_threads = 8;
    stats.net_frames_received = 77;
    stats.net_reads_paused = 6;
    stats.shed = 21;
    stats.expired = 22;
    stats.net_sheds = 23;
    stats.net_idle_closed = 24;
    stats.net_header_timeout_closed = 25;
    stats.net_write_stall_closed = 26;
    stats.net_high_priority_frames = 27;
    stats.net_best_effort_frames = 28;
    EncodeStatResponse(stats, crc, &wire);
    ASSERT_EQ(ParseFrame(wire, &type, &flags, &body, &consumed, &error),
              ParseResult::kFrame);
    ASSERT_TRUE(DecodeResponseBody(type, flags, body, &resp).ok());
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp.stats.requests, 101u);
    EXPECT_EQ(resp.stats.failures, 2u);
    EXPECT_EQ(resp.stats.steals, 3u);
    EXPECT_EQ(resp.stats.queued, 4u);
    EXPECT_EQ(resp.stats.cache_hits, 5u);
    EXPECT_EQ(resp.stats.cache_bytes, 1u << 20);
    EXPECT_EQ(resp.stats.archive_docs, 455u);
    EXPECT_DOUBLE_EQ(resp.stats.disk_seconds, 0.25);
    EXPECT_DOUBLE_EQ(resp.stats.latency_p99_us, 1234.5);
    EXPECT_EQ(resp.stats.num_threads, 8u);
    EXPECT_EQ(resp.stats.net_frames_received, 77u);
    EXPECT_EQ(resp.stats.net_reads_paused, 6u);
    EXPECT_EQ(resp.stats.shed, 21u);
    EXPECT_EQ(resp.stats.expired, 22u);
    EXPECT_EQ(resp.stats.net_sheds, 23u);
    EXPECT_EQ(resp.stats.net_idle_closed, 24u);
    EXPECT_EQ(resp.stats.net_header_timeout_closed, 25u);
    EXPECT_EQ(resp.stats.net_write_stall_closed, 26u);
    EXPECT_EQ(resp.stats.net_high_priority_frames, 27u);
    EXPECT_EQ(resp.stats.net_best_effort_frames, 28u);
  }
}

TEST(ProtocolTest, EveryTruncationIsNeedMoreNeverError) {
  // A strict parser must distinguish "short read" from "garbage": every
  // proper prefix of every valid frame asks for more bytes.
  std::vector<std::string> frames;
  std::string wire;
  const std::vector<uint64_t> ids = {1, 2, 3};
  for (const bool crc : {false, true}) {
    wire.clear();
    EncodeGetRequest(7, crc, &wire);
    frames.push_back(wire);
    wire.clear();
    EncodeMultiGetRequest(ids.data(), ids.size(), crc, &wire);
    frames.push_back(wire);
    wire.clear();
    EncodeGetRangeRequest(7, 8, 9, crc, &wire);
    frames.push_back(wire);
    wire.clear();
    EncodeStatRequest(crc, &wire);
    frames.push_back(wire);
    wire.clear();
    EncodeDocResponse(MessageType::kGet, WireCode::kOk, "payload", crc,
                      &wire);
    frames.push_back(wire);
  }
  for (const std::string& frame : frames) {
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      EXPECT_EQ(ParseOnly(std::string_view(frame).substr(0, cut)),
                ParseResult::kNeedMore)
          << "prefix of " << cut << " of " << frame.size();
    }
    EXPECT_EQ(ParseOnly(frame), ParseResult::kFrame);
  }
}

std::string FrameWithHeader(uint32_t body_len, uint8_t type, uint8_t flags,
                            std::string_view payload) {
  std::string wire;
  wire.append(reinterpret_cast<const char*>(&body_len), sizeof(body_len));
  wire.push_back(static_cast<char>(type));
  wire.push_back(static_cast<char>(flags));
  wire.append(payload.data(), payload.size());
  return wire;
}

TEST(ProtocolTest, MalformedFramesAreErrorsNotCrashes) {
  // Hostile length prefix: claims more than the protocol bound.
  EXPECT_EQ(ParseOnly(FrameWithHeader(kMaxFrameBytes + 1, 1, 0, "")),
            ParseResult::kError);
  // Length too short to hold the type/flags header.
  EXPECT_EQ(ParseOnly(FrameWithHeader(0, 1, 0, "")), ParseResult::kError);
  EXPECT_EQ(ParseOnly(FrameWithHeader(1, 1, 0, "")), ParseResult::kError);
  // Unknown type / unknown flag bits.
  EXPECT_EQ(ParseOnly(FrameWithHeader(2, 0, 0, "")), ParseResult::kError);
  EXPECT_EQ(ParseOnly(FrameWithHeader(2, 99, 0, "")), ParseResult::kError);
  EXPECT_EQ(ParseOnly(FrameWithHeader(2, 1, 0x80, "")), ParseResult::kError);
  // CRC flag on a frame too short to carry a CRC.
  EXPECT_EQ(ParseOnly(FrameWithHeader(4, 1, kFlagCrc, "xy")),
            ParseResult::kError);
  // Corrupted CRC: flip one payload byte of a valid CRC'd frame.
  std::string wire;
  EncodeGetRequest(7, /*crc=*/true, &wire);
  wire[8] ^= 0x01;
  EXPECT_EQ(ParseOnly(wire), ParseResult::kError);
}

TEST(ProtocolTest, MalformedBodiesAreDecodeErrors) {
  NetRequest req;
  // Get payload of the wrong size.
  EXPECT_FALSE(
      DecodeRequestBody(MessageType::kGet, 0, "short", &req).ok());
  // MultiGet count that disagrees with the payload it brought.
  std::string body;
  const uint32_t lying_count = 10;
  body.append(reinterpret_cast<const char*>(&lying_count),
              sizeof(lying_count));
  body.append(8, '\0');  // one id, not ten
  EXPECT_FALSE(
      DecodeRequestBody(MessageType::kMultiGet, 0, body, &req).ok());
  // MultiGet count over the allocation bound.
  body.clear();
  const uint32_t huge_count = kMaxMultiGetIds + 1;
  body.append(reinterpret_cast<const char*>(&huge_count),
              sizeof(huge_count));
  EXPECT_FALSE(
      DecodeRequestBody(MessageType::kMultiGet, 0, body, &req).ok());
  // Stat with a payload, kError as a request.
  EXPECT_FALSE(DecodeRequestBody(MessageType::kStat, 0, "x", &req).ok());
  EXPECT_FALSE(DecodeRequestBody(MessageType::kError, 0, "", &req).ok());
  // GetRange short one field.
  EXPECT_FALSE(DecodeRequestBody(MessageType::kGetRange, 0,
                                 std::string(16, '\0'), &req)
                   .ok());
}

TEST(ProtocolTest, WireCodeRoundTripsStatus) {
  EXPECT_EQ(ToWireCode(Status::OK()), WireCode::kOk);
  EXPECT_EQ(ToWireCode(Status::NotFound("x")), WireCode::kNotFound);
  EXPECT_EQ(ToWireCode(Status::InvalidArgument("x")),
            WireCode::kInvalidArgument);
  EXPECT_EQ(ToWireCode(Status::OutOfRange("x")), WireCode::kOutOfRange);
  EXPECT_EQ(ToWireCode(Status::Unavailable("x")), WireCode::kUnavailable);
  EXPECT_STREQ(WireCodeToString(WireCode::kNotFound), "NotFound");
}

// ---------------------------------------------------------------------------
// DocServer end to end over loopback.

// A built store + service + started server, torn down in reverse order.
class ServerHarness {
 public:
  explicit ServerHarness(DocServerOptions server_options = {},
                         size_t corpus_bytes = 1 << 20)
      : collection_(TestCollection(corpus_bytes, /*seed=*/11)) {
    ShardedStoreOptions store_options;
    store_options.num_shards = 4;
    store_options.dict_bytes = collection_.size_bytes() / 64;
    store_ = ShardedStore::Build(collection_, store_options);
    DocServiceOptions service_options;
    service_options.num_threads = 4;
    service_options.cache_bytes = 8 << 20;
    service_ = std::make_unique<DocService>(store_.get(), service_options);
    server_ = std::make_unique<DocServer>(service_.get(), server_options);
    const Status started = server_->Start();
    RLZ_CHECK(started.ok()) << started.ToString();
  }

  ~ServerHarness() {
    server_->Shutdown();
    service_->Shutdown();
  }

  const Collection& collection() const { return collection_; }
  DocService& service() { return *service_; }
  DocServer& server() { return *server_; }
  uint16_t port() const { return server_->port(); }

  std::unique_ptr<NetClient> Connect(NetClientOptions options = {}) {
    auto client = NetClient::Connect(server_->port(), options);
    RLZ_CHECK(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

 private:
  Collection collection_;
  std::unique_ptr<ShardedStore> store_;
  std::unique_ptr<DocService> service_;
  std::unique_ptr<DocServer> server_;
};

TEST(DocServerTest, GetMatchesCollection) {
  ServerHarness harness;
  auto client = harness.Connect();
  for (const size_t id : {size_t{0}, size_t{1},
                          harness.collection().num_docs() - 1}) {
    auto doc = client->Get(id);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    EXPECT_EQ(*doc, harness.collection().doc(id)) << "doc " << id;
  }
}

TEST(DocServerTest, GetRangeMatchesSubstring) {
  ServerHarness harness;
  auto client = harness.Connect();
  const std::string_view doc = harness.collection().doc(3);
  ASSERT_GT(doc.size(), 10u);
  auto window = client->GetRange(3, 5, doc.size() - 7);
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  EXPECT_EQ(*window, doc.substr(5, doc.size() - 7));
  // Degenerate range: empty but well-formed.
  auto empty = client->GetRange(3, 0, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 0u);
}

TEST(DocServerTest, ErrorsTravelAsWireCodes) {
  ServerHarness harness;
  auto client = harness.Connect();
  const size_t bogus = harness.collection().num_docs() + 100;
  // The wire result must carry the same status class as the direct call.
  const GetResult direct = harness.service().Get(bogus).get();
  ASSERT_FALSE(direct.ok());
  auto wire = client->Get(bogus);
  ASSERT_FALSE(wire.ok());
  EXPECT_EQ(wire.status().code(), direct.status.code());
  // A MultiGet mixing good and bad ids reports per-element codes.
  auto mixed = client->MultiGet({0, bogus, 1});
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  ASSERT_EQ(mixed->size(), 3u);
  EXPECT_EQ((*mixed)[0].code, WireCode::kOk);
  EXPECT_EQ((*mixed)[0].bytes, harness.collection().doc(0));
  EXPECT_EQ((*mixed)[1].code, ToWireCode(direct.status));
  EXPECT_EQ((*mixed)[2].code, WireCode::kOk);
  EXPECT_EQ((*mixed)[2].bytes, harness.collection().doc(1));
}

TEST(DocServerTest, CrcEndToEnd) {
  ServerHarness harness;
  NetClientOptions crc;
  crc.use_crc = true;
  auto client = harness.Connect(crc);
  // The server verifies the request CRC and answers with a CRC the
  // client's parser verifies in turn.
  auto doc = client->Get(2);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(*doc, harness.collection().doc(2));
}

TEST(DocServerTest, ConcurrentPipelinedConnectionsMatchDirect) {
  // The acceptance bar of this subsystem: several connections, each
  // deeply pipelined, every payload byte-identical to the collection.
  ServerHarness harness;
  constexpr int kConnections = 6;
  constexpr int kRounds = 40;
  constexpr size_t kDepth = 8;
  const size_t num_docs = harness.collection().num_docs();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kConnections);
  for (int t = 0; t < kConnections; ++t) {
    threads.emplace_back([&, t] {
      auto client = harness.Connect();
      Rng rng(1000 + t);
      std::vector<uint64_t> ids(3);
      std::vector<std::vector<uint64_t>> inflight;
      for (int round = 0; round < kRounds; ++round) {
        inflight.clear();
        for (size_t d = 0; d < kDepth; ++d) {
          for (auto& id : ids) id = rng.Next() % num_docs;
          client->SendMultiGet(ids);
          inflight.push_back(ids);
        }
        for (size_t d = 0; d < kDepth; ++d) {
          auto response = client->Receive();
          if (!response.ok() || !response->ok() ||
              response->elements.size() != inflight[d].size()) {
            ++failures;
            return;
          }
          for (size_t i = 0; i < inflight[d].size(); ++i) {
            if (response->elements[i].code != WireCode::kOk ||
                response->elements[i].bytes !=
                    harness.collection().doc(inflight[d][i])) {
              ++failures;
              return;
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  const NetServerStats stats = harness.server().stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kConnections));
  EXPECT_EQ(stats.coalesced_requests,
            static_cast<uint64_t>(kConnections) * kRounds * kDepth * 3);
  EXPECT_EQ(stats.protocol_errors, 0u);
  // Pipelining must actually coalesce: strictly fewer batches than doc
  // requests (equality would mean no batching at all).
  EXPECT_LT(stats.batches, stats.coalesced_requests);
}

TEST(DocServerTest, MalformedFrameGetsErrorThenCloseOthersUnaffected) {
  ServerHarness harness;
  auto healthy = harness.Connect();
  auto hostile = harness.Connect();
  // An in-protocol request, then garbage with a valid length prefix.
  hostile->SendGet(0);
  hostile->SendRaw(FrameWithHeader(2, /*type=*/0x63, 0, ""));
  // The parsed request is answered...
  auto first = hostile->Receive();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->ok());
  EXPECT_EQ(first->payload, harness.collection().doc(0));
  // ...the poison draws one kError frame...
  auto second = hostile->Receive();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->type, MessageType::kError);
  EXPECT_EQ(second->code, WireCode::kInvalidArgument);
  // ...and then the connection is gone.
  auto third = hostile->Receive();
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kUnavailable);
  // The healthy connection never notices.
  auto doc = healthy->Get(1);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(*doc, harness.collection().doc(1));
  EXPECT_GE(harness.server().stats().protocol_errors, 1u);
}

TEST(DocServerTest, GarbageFloodsNeverCrash) {
  ServerHarness harness;
  Rng rng(77);
  for (int round = 0; round < 8; ++round) {
    auto client = harness.Connect();
    std::string junk(512, '\0');
    for (auto& c : junk) c = static_cast<char>(rng.Next());
    client->SendRaw(junk);
    // Whatever the junk decoded as, the server answers with frames or a
    // close — never a hang or a crash. Drain until the close.
    for (int i = 0; i < 64; ++i) {
      if (!client->Receive().ok()) break;
    }
  }
  // The server is still alive and serving.
  auto client = harness.Connect();
  auto doc = client->Get(0);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(*doc, harness.collection().doc(0));
}

TEST(DocServerTest, BackpressurePausesReadsAndLosesNothing) {
  // Tiny outbound bound and pipelining cap: a deep burst must trip both
  // forms of backpressure, yet every response arrives intact and in
  // order once the client starts draining.
  DocServerOptions options;
  options.max_outbound_bytes = 1;      // clamps to the 4 KB floor
  options.max_pipelined_requests = 4;
  ServerHarness harness(options);
  EXPECT_EQ(harness.server().options().max_outbound_bytes, 4u << 10);
  auto client = harness.Connect();
  constexpr size_t kBurst = 64;
  for (size_t i = 0; i < kBurst; ++i) {
    client->SendGet(i % harness.collection().num_docs());
  }
  ASSERT_TRUE(client->Flush().ok());
  for (size_t i = 0; i < kBurst; ++i) {
    auto doc = client->Receive();
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    ASSERT_TRUE(doc->ok());
    EXPECT_EQ(doc->payload,
              harness.collection().doc(i % harness.collection().num_docs()))
        << "response " << i;
  }
  EXPECT_GE(harness.server().stats().reads_paused, 1u);
}

TEST(DocServerTest, DrainAnswersEverythingParsed) {
  ServerHarness harness;
  auto client = harness.Connect();
  constexpr size_t kBurst = 32;
  std::vector<uint64_t> ids = {0, 1, 2};
  for (size_t i = 0; i < kBurst; ++i) client->SendMultiGet(ids);
  ASSERT_TRUE(client->Flush().ok());
  // Shutdown races the in-flight burst: every request the server had
  // parsed must still be answered (correctly) before the close.
  harness.server().Shutdown();
  size_t answered = 0;
  for (size_t i = 0; i < kBurst; ++i) {
    auto response = client->Receive();
    if (!response.ok()) break;
    ASSERT_TRUE(response->ok());
    ASSERT_EQ(response->elements.size(), ids.size());
    for (size_t k = 0; k < ids.size(); ++k) {
      EXPECT_EQ(response->elements[k].bytes,
                harness.collection().doc(ids[k]));
    }
    ++answered;
  }
  // No hard lower bound (the race decides how much was parsed), but the
  // server must have closed cleanly either way.
  auto after = client->Receive();
  EXPECT_FALSE(after.ok());
  SUCCEED() << answered << " of " << kBurst << " answered before close";
}

TEST(DocServerTest, ShutdownIsIdempotent) {
  ServerHarness harness;
  auto client = harness.Connect();
  ASSERT_TRUE(client->Get(0).ok());
  harness.server().Shutdown();
  harness.server().Shutdown();  // second call: no-op, no deadlock
}

TEST(DocServerTest, StatCarriesServiceAndNetworkCounters) {
  ServerHarness harness;
  auto client = harness.Connect();
  for (uint64_t id = 0; id < 5; ++id) ASSERT_TRUE(client->Get(id).ok());
  auto stats = client->Stat();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->archive_docs, harness.collection().num_docs());
  EXPECT_EQ(stats->num_threads, 4u);
  EXPECT_GE(stats->requests, 5u);
  EXPECT_GE(stats->net_frames_received, 6u);  // 5 Gets + the Stat itself
  EXPECT_GE(stats->net_frames_sent, 5u);
  EXPECT_EQ(stats->net_connections_active, 1u);
  EXPECT_GE(stats->net_batches, 1u);
  EXPECT_GE(stats->net_coalesced_requests, 5u);
  EXPECT_GT(stats->net_bytes_received, 0u);
  EXPECT_GT(stats->net_bytes_sent, 0u);
  // The wire stats agree with the in-process service view.
  const ServiceStats direct = harness.service().Stats();
  EXPECT_GE(direct.requests, stats->requests - 1);
}

// ---------------------------------------------------------------------------
// Overload protection end to end (DESIGN.md §14): wire priorities,
// parse-time shedding, client deadlines, and slow-client reaping.

TEST(DocServerTest, PriorityAndDeadlineTravelEndToEnd) {
  ServerHarness harness;
  NetClientOptions options;
  options.priority = RequestPriority::kHigh;
  options.deadline_ms = 5000;  // generous: exercises the wire, not expiry
  auto client = harness.Connect(options);
  auto doc = client->Get(3);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(*doc, harness.collection().doc(3));
  EXPECT_GE(harness.server().stats().high_priority_frames, 1u);
  // Best-effort under light load is served normally, and counted.
  options.priority = RequestPriority::kBestEffort;
  options.deadline_ms = 0;
  auto bulk = harness.Connect(options);
  auto bulk_doc = bulk->Get(4);
  ASSERT_TRUE(bulk_doc.ok()) << bulk_doc.status().ToString();
  EXPECT_EQ(*bulk_doc, harness.collection().doc(4));
  EXPECT_GE(harness.server().stats().best_effort_frames, 1u);
}

TEST(DocServerTest, BestEffortBudgetShedsInOrderWithRetryAfter) {
  // A per-connection best-effort budget of one: a pipelined burst must
  // draw sheds (kUnavailable + retry-after) while every response — shed
  // or served — arrives in request order.
  DocServerOptions options;
  options.max_best_effort_per_conn = 1;
  ServerHarness harness(options);
  NetClientOptions client_options;
  client_options.priority = RequestPriority::kBestEffort;
  auto client = harness.Connect(client_options);
  constexpr size_t kBurst = 8;
  for (size_t i = 0; i < kBurst; ++i) client->SendGet(i);
  ASSERT_TRUE(client->Flush().ok());
  size_t served = 0;
  size_t shed = 0;
  for (size_t i = 0; i < kBurst; ++i) {
    auto response = client->Receive();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response->ok()) {
      // Positional pipelining: response i answers request i.
      EXPECT_EQ(response->payload, harness.collection().doc(i))
          << "response " << i;
      ++served;
    } else {
      EXPECT_EQ(response->code, WireCode::kUnavailable);
      EXPECT_GE(response->retry_after_ms, 1u);
      ++shed;
    }
  }
  EXPECT_GE(served, 1u);  // the budgeted request is always served
  EXPECT_GE(shed, 1u);    // a burst of 8 against a budget of 1 must shed
  EXPECT_EQ(served + shed, kBurst);
  EXPECT_GE(harness.server().stats().sheds, shed);
  // The connection itself is healthy: a paced request still works.
  auto doc = client->Get(0);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(*doc, harness.collection().doc(0));
}

TEST(DocServerTest, IdleConnectionsReapedNewOnesUnaffected) {
  DocServerOptions options;
  options.idle_timeout_ms = 50;
  ServerHarness harness(options);
  auto idle = harness.Connect();
  // Long past the idle bound (the sweep tick is a fraction of it).
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  // A connection born after the reap serves normally.
  auto fresh = harness.Connect();
  auto doc = fresh->Get(1);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(*doc, harness.collection().doc(1));
  // The idle connection was closed by the server.
  auto dead = idle->Receive();
  EXPECT_FALSE(dead.ok());
  EXPECT_GE(harness.server().stats().idle_closed, 1u);
}

TEST(DocServerTest, SlowLorisReapedHealthyTrafficUnaffected) {
  // The attack the idle clock cannot catch: a partial frame trickled a
  // byte at a time resets activity forever. The header deadline reaps it.
  DocServerOptions options;
  options.header_timeout_ms = 60;
  options.idle_timeout_ms = 10'000;  // armed but far away: must not fire
  ServerHarness harness(options);
  auto healthy = harness.Connect();
  auto loris = harness.Connect();
  // A legal header promising a 1000-byte body (well under the frame
  // bound), then the body trickled one byte at a time — the frame never
  // completes and never turns malformed.
  loris->SendRaw(FrameWithHeader(1000, /*type=*/1, /*flags=*/0, ""));
  ASSERT_TRUE(loris->Flush().ok());
  bool reaped = false;
  for (int i = 0; i < 30 && !reaped; ++i) {
    loris->SendRaw("x");
    (void)loris->Flush();  // fails once the server closes: that's the reap
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    reaped = harness.server().stats().header_timeout_closed > 0;
    // Healthy traffic flows throughout the flood.
    auto doc = healthy->Get(i % 4);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  }
  const NetServerStats stats = harness.server().stats();
  EXPECT_GE(stats.header_timeout_closed, 1u);
  EXPECT_EQ(stats.idle_closed, 0u);
}

TEST(DocServerTest, StalledReaderReapedByWriteStallDeadline) {
  // A client that requests megabytes and never reads: the kernel buffers
  // fill, the server's outbound stops advancing, and the write-stall
  // deadline closes the connection instead of holding the memory forever.
  DocServerOptions options;
  options.write_stall_timeout_ms = 100;
  ServerHarness harness(options);
  auto client = harness.Connect();
  std::vector<uint64_t> ids;
  const size_t num_docs = harness.collection().num_docs();
  for (uint64_t id = 0; id < std::min<size_t>(num_docs, 16); ++id) {
    ids.push_back(id);
  }
  // 64 MultiGets of 16 docs each: megabytes of response payload, far
  // beyond loopback socket buffers, while small enough that the first
  // coalesced batch decodes promptly even on a loaded host (response
  // bytes must reach the outbound buffer before the stall clock arms).
  for (int i = 0; i < 64; ++i) client->SendMultiGet(ids);
  ASSERT_TRUE(client->Flush().ok());
  // Never read. The server must reap the stalled connection.
  for (int waited = 0; waited < 300; ++waited) {
    if (harness.server().stats().write_stall_closed > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_GE(harness.server().stats().write_stall_closed, 1u);
  // The server is alive and serving new connections.
  auto fresh = harness.Connect();
  auto doc = fresh->Get(0);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
}

TEST(NetClientTest, HungServerSurfacesDeadlineExceeded) {
  // A listener that never answers (connections sit in the accept
  // backlog): the client's receive deadline must fire instead of
  // blocking forever.
  uint16_t port = 0;
  auto listener = ListenLoopback(0, &port);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  NetClientOptions options;
  options.deadline_ms = 100;
  auto client = NetClient::Connect(port, options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto start = std::chrono::steady_clock::now();
  auto doc = (*client)->Get(0);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.status().code(), StatusCode::kDeadlineExceeded)
      << doc.status().ToString();
  // Fired in deadline time, not TCP-timeout time.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

// ---------------------------------------------------------------------------
// The BatchItem submission path the batcher uses (mixed whole-doc and
// range requests in one ServeBatch).

TEST(DocServiceBatchItemTest, MixedItemsMatchDirectCalls) {
  const Collection collection = TestCollection(1 << 20, 13);
  ShardedStoreOptions store_options;
  store_options.num_shards = 4;
  store_options.dict_bytes = collection.size_bytes() / 64;
  auto store = ShardedStore::Build(collection, store_options);
  DocServiceOptions service_options;
  service_options.num_threads = 4;
  DocService service(store.get(), service_options);

  std::vector<BatchItem> items;
  BatchItem whole;
  whole.id = 2;
  items.push_back(whole);
  BatchItem range;
  range.id = 5;
  range.offset = 3;
  range.length = 40;
  range.is_range = true;
  items.push_back(range);
  BatchItem bogus;
  bogus.id = collection.num_docs() + 9;
  items.push_back(bogus);

  ServeBatch batch;
  service.SubmitBatch(items.data(), items.size(), &batch);
  const std::vector<GetResult>& results = batch.Wait();
  ASSERT_EQ(results.size(), items.size());
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(*results[0].text, collection.doc(2));
  ASSERT_TRUE(results[1].ok());
  EXPECT_EQ(*results[1].text, collection.doc(5).substr(3, 40));
  EXPECT_FALSE(results[2].ok());

  // The live-backlog gauge exists and settles to zero once drained.
  service.Drain();
  EXPECT_EQ(service.Stats().queued, 0u);
  service.Shutdown();
}

}  // namespace
}  // namespace net
}  // namespace rlz
