// Hot-path regression suite (DESIGN.md §9): scratch-reuse decode must be
// byte-identical to fresh-allocation decode across every position/length
// coding pair and every archive format; the fused no-vector decode must
// agree with the general stream decode; and the per-document allocation
// guards (decoded-size limit, z-stream framing limits) must hold.

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/dictionary.h"
#include "core/factor_coder.h"
#include "core/factorizer.h"
#include "core/rlz_archive.h"
#include "corpus/generator.h"
#include "semistatic/semistatic_archive.h"
#include "serve/doc_service.h"
#include "serve/sharded_store.h"
#include "store/ascii_archive.h"
#include "store/blocked_archive.h"
#include "store/decode_scratch.h"
#include "util/random.h"
#include "zip/compressor.h"
#include "zip/gzipx.h"

// Global allocation counter: this binary replaces the global allocator so
// SteadyStateScratchDecodeIsAllocationFree can assert DESIGN.md §9's
// allocation budget instead of trusting it. Counting is a relaxed atomic
// increment; allocation behavior is otherwise unchanged.
namespace {
std::atomic<uint64_t> g_heap_allocs{0};
}  // namespace

// GCC's -Wmismatched-new-delete cannot see that the replaced operator
// new below allocates with malloc, so free() in the matching deletes is
// correct; silence the false positive for these definitions only.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace rlz {
namespace {

Collection TestCollection(size_t target_bytes, uint64_t seed) {
  CorpusOptions options;
  options.target_bytes = target_bytes;
  options.seed = seed;
  return GenerateCorpus(options).collection;
}

// Every position coding x every length coding, the paper's pairs first.
std::vector<PairCoding> AllCodings() {
  std::vector<PairCoding> codings;
  for (PosCoding pos :
       {PosCoding::kU32, PosCoding::kZlib, PosCoding::kPFD}) {
    for (LenCoding len : {LenCoding::kVByte, LenCoding::kZlib,
                          LenCoding::kS9, LenCoding::kPFD}) {
      codings.push_back(PairCoding{pos, len});
    }
  }
  return codings;
}

// ---------------------------------------------------------------------------
// FactorCoder: scratch decode == fresh decode == source text, all codings.

TEST(HotPathTest, ScratchDecodeIsByteIdenticalAcrossAllCodings) {
  const Collection collection = TestCollection(1 << 18, 51);
  auto dict = DictionaryBuilder::BuildSampled(
      collection.data(), collection.size_bytes() / 50, 1024);
  Factorizer factorizer(dict.get());
  std::vector<std::vector<Factor>> docs(collection.num_docs());
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    factorizer.Factorize(collection.doc(i), &docs[i]);
  }

  for (const PairCoding coding : AllCodings()) {
    SCOPED_TRACE(coding.name());
    const FactorCoder coder(coding);
    DecodeScratch scratch;  // one scratch reused across every document
    for (size_t i = 0; i < collection.num_docs(); ++i) {
      std::string encoded;
      ASSERT_TRUE(coder.EncodeDoc(docs[i], &encoded).ok());
      std::string fresh;
      std::string reused;
      ASSERT_TRUE(coder.DecodeDoc(encoded, *dict, &fresh).ok());
      ASSERT_TRUE(coder.DecodeDoc(encoded, *dict, &reused, &scratch).ok());
      ASSERT_EQ(fresh, collection.doc(i)) << "doc " << i;
      ASSERT_EQ(reused, fresh) << "doc " << i;
    }
  }
}

TEST(HotPathTest, ScratchDecodeRangeIsByteIdenticalAcrossAllCodings) {
  const Collection collection = TestCollection(1 << 17, 52);
  auto dict = DictionaryBuilder::BuildSampled(
      collection.data(), collection.size_bytes() / 50, 1024);
  Factorizer factorizer(dict.get());
  Rng rng(77);
  for (const PairCoding coding : AllCodings()) {
    SCOPED_TRACE(coding.name());
    const FactorCoder coder(coding);
    DecodeScratch scratch;
    for (size_t i = 0; i < collection.num_docs(); i += 3) {
      const std::string_view doc = collection.doc(i);
      std::vector<Factor> factors;
      factorizer.Factorize(doc, &factors);
      std::string encoded;
      ASSERT_TRUE(coder.EncodeDoc(factors, &encoded).ok());
      const size_t offset = rng.Next() % (doc.size() + 1);
      const size_t length = rng.Next() % 200;
      std::string fresh;
      std::string reused;
      ASSERT_TRUE(
          coder.DecodeRange(encoded, *dict, offset, length, &fresh).ok());
      ASSERT_TRUE(coder.DecodeRange(encoded, *dict, offset, length, &reused,
                                    &scratch)
                      .ok());
      const std::string_view expect =
          offset < doc.size() ? doc.substr(offset, length)
                              : std::string_view();
      ASSERT_EQ(fresh, expect);
      ASSERT_EQ(reused, fresh);
    }
  }
}

// The decode output must append (not clobber) and be identical whether the
// same scratch was previously used on a larger document — stale scratch
// contents must never leak into a later decode.
TEST(HotPathTest, ScratchReuseAfterLargerDocumentIsClean) {
  const Collection collection = TestCollection(1 << 17, 53);
  auto dict = DictionaryBuilder::BuildSampled(
      collection.data(), collection.size_bytes() / 50, 1024);
  Factorizer factorizer(dict.get());
  const FactorCoder coder(kZV);
  // Largest document first, then every other document through the same
  // scratch.
  size_t largest = 0;
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    if (collection.doc_size(i) > collection.doc_size(largest)) largest = i;
  }
  DecodeScratch scratch;
  std::vector<Factor> factors;
  std::string encoded;
  std::string out;
  factorizer.Factorize(collection.doc(largest), &factors);
  ASSERT_TRUE(coder.EncodeDoc(factors, &encoded).ok());
  ASSERT_TRUE(coder.DecodeDoc(encoded, *dict, &out, &scratch).ok());
  ASSERT_EQ(out, collection.doc(largest));
  for (size_t i = 0; i < collection.num_docs(); i += 5) {
    factors.clear();
    encoded.clear();
    out.clear();
    factorizer.Factorize(collection.doc(i), &factors);
    ASSERT_TRUE(coder.EncodeDoc(factors, &encoded).ok());
    ASSERT_TRUE(coder.DecodeDoc(encoded, *dict, &out, &scratch).ok());
    ASSERT_EQ(out, collection.doc(i)) << "doc " << i;
  }
}

// ---------------------------------------------------------------------------
// Archive formats: the scratch-aware virtuals agree with the plain ones.

TEST(HotPathTest, EveryArchiveFormatServesIdenticalBytesWithScratch) {
  const Collection collection = TestCollection(1 << 18, 54);
  std::vector<std::unique_ptr<Archive>> archives;
  archives.push_back(std::make_unique<AsciiArchive>(collection));
  archives.push_back(std::make_unique<BlockedArchive>(
      collection, GetCompressor(CompressorId::kGzipx), 64 << 10));
  archives.push_back(
      SemiStaticArchive::Build(collection, SemiStaticScheme::kEtdc));
  RlzBuildOptions rlz_options;
  auto dict = DictionaryBuilder::BuildSampled(
      collection.data(), collection.size_bytes() / 50, 1024);
  archives.push_back(RlzArchive::Build(collection, std::move(dict)));
  ShardedStoreOptions store_options;
  store_options.num_shards = 3;
  archives.push_back(ShardedStore::Build(collection, store_options));

  for (const auto& archive : archives) {
    SCOPED_TRACE(archive->name());
    DecodeScratch scratch;
    std::string fresh;
    std::string reused;
    for (size_t i = 0; i < archive->num_docs(); ++i) {
      ASSERT_TRUE(archive->Get(i, &fresh).ok());
      ASSERT_TRUE(archive->Get(i, &reused, nullptr, &scratch).ok());
      ASSERT_EQ(fresh, collection.doc(i)) << "doc " << i;
      ASSERT_EQ(reused, fresh) << "doc " << i;
      std::string fresh_range;
      std::string reused_range;
      ASSERT_TRUE(archive->GetRange(i, 7, 64, &fresh_range).ok());
      ASSERT_TRUE(
          archive->GetRange(i, 7, 64, &reused_range, nullptr, &scratch).ok());
      ASSERT_EQ(reused_range, fresh_range) << "doc " << i;
    }
  }
}

// Zero-copy reopen: an archive loaded from disk aliases the file bytes
// instead of re-copying them; everything it serves must still match.
TEST(HotPathTest, ZeroCopyReopenServesIdenticalBytes) {
  const Collection collection = TestCollection(1 << 18, 55);
  auto dict = DictionaryBuilder::BuildSampled(
      collection.data(), collection.size_bytes() / 50, 1024);
  const auto built = RlzArchive::Build(collection, std::move(dict));
  const std::string path =
      testing::TempDir() + "/hot_path_zero_copy.rlz";
  ASSERT_TRUE(built->Save(path).ok());
  OpenOptions options;
  options.build_suffix_array = false;
  auto loaded = RlzArchive::Load(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->payload_bytes(), built->payload_bytes());
  ASSERT_EQ((*loaded)->stored_bytes(), built->stored_bytes());
  DecodeScratch scratch;
  std::string doc;
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    ASSERT_TRUE((*loaded)->Get(i, &doc, nullptr, &scratch).ok());
    ASSERT_EQ(doc, collection.doc(i)) << "doc " << i;
  }
}

// ---------------------------------------------------------------------------
// Allocation guards.

TEST(HotPathTest, DecodedDocumentSizeLimitRejectsCraftedStreams) {
  // A small dictionary and a factor list whose lengths sum past the
  // per-document limit: the decode must fail before sizing the output.
  const std::string text(1 << 20, 'a');
  Dictionary dict(text, /*build_suffix_array=*/false);
  std::vector<Factor> factors(
      2048, Factor{0, 1 << 20});  // 2 GiB claimed from 2048 factors
  std::string out;
  const Status direct = Factorizer::Decode(factors, dict, &out);
  EXPECT_FALSE(direct.ok());
  EXPECT_TRUE(out.empty());

  // The four fused pairs plus a non-fused extension pair, so both decode
  // paths enforce the limit.
  for (const PairCoding coding :
       {kUV, kZV, kZZ, kUZ, PairCoding{PosCoding::kU32, LenCoding::kPFD}}) {
    SCOPED_TRACE(coding.name());
    const FactorCoder coder(coding);
    std::string encoded;
    ASSERT_TRUE(coder.EncodeDoc(factors, &encoded).ok());
    std::string decoded;
    const Status status = coder.DecodeDoc(encoded, dict, &decoded);
    EXPECT_FALSE(status.ok());
    EXPECT_TRUE(decoded.empty());
  }
}

TEST(HotPathTest, ZStreamLimitsGuardAgainstFormatTruncation) {
  EXPECT_TRUE(FactorCoder::CheckZStreamLimits(0, 0).ok());
  EXPECT_TRUE(FactorCoder::CheckZStreamLimits(
                  FactorCoder::kMaxZStreamBytes - 1,
                  FactorCoder::kMaxZStreamBytes - 1)
                  .ok());
  EXPECT_FALSE(
      FactorCoder::CheckZStreamLimits(FactorCoder::kMaxZStreamBytes, 0)
          .ok());
  EXPECT_FALSE(
      FactorCoder::CheckZStreamLimits(0, FactorCoder::kMaxZStreamBytes)
          .ok());
  EXPECT_FALSE(
      FactorCoder::CheckZStreamLimits(1ull << 40, 1ull << 40).ok());
}

// The headline property of DESIGN.md §9, asserted rather than trusted:
// once a scratch (and the reused output buffer) have reached steady-state
// capacity, decoding performs zero heap allocations — for the fused pairs
// and the z-coded pairs alike. The global operator new above counts every
// allocation in the process; the measured section runs single-threaded.
TEST(HotPathTest, SteadyStateScratchDecodeIsAllocationFree) {
  const Collection collection = TestCollection(1 << 18, 56);
  auto dict = DictionaryBuilder::BuildSampled(
      collection.data(), collection.size_bytes() / 50, 1024);
  Factorizer factorizer(dict.get());
  for (const PairCoding coding : {kUV, kZV, kZZ, kUZ}) {
    SCOPED_TRACE(coding.name());
    const FactorCoder coder(coding);
    std::vector<std::string> encoded(collection.num_docs());
    for (size_t i = 0; i < collection.num_docs(); ++i) {
      std::vector<Factor> factors;
      factorizer.Factorize(collection.doc(i), &factors);
      ASSERT_TRUE(coder.EncodeDoc(factors, &encoded[i]).ok());
    }
    DecodeScratch scratch;
    std::string out;
    // Two warm-up passes grow every buffer to its steady-state capacity.
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < collection.num_docs(); ++i) {
        out.clear();
        ASSERT_TRUE(coder.DecodeDoc(encoded[i], *dict, &out, &scratch).ok());
      }
    }
    const uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    for (size_t i = 0; i < collection.num_docs(); ++i) {
      out.clear();
      const Status status = coder.DecodeDoc(encoded[i], *dict, &out, &scratch);
      if (!status.ok()) FAIL() << status.ToString();
    }
    const uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before) << "steady-state decode allocated";
  }
}

// The serving-layer counterpart (DESIGN.md §10): once a ServeBatch's
// buffers are warm and the working set is cache-resident, the batched
// request path — SubmitBatch routing, per-worker queue rings, completion
// countdown, result delivery — performs zero heap allocations end to end.
// Worker threads run inside the measured window (Wait() bounds them), so
// a stray per-request allocation anywhere in the path fails the count.
TEST(HotPathTest, SteadyStateBatchedServingIsAllocationFree) {
  const Collection collection = TestCollection(1 << 17, 57);
  ShardedStoreOptions store_options;
  store_options.num_shards = 2;
  auto store = ShardedStore::Build(collection, store_options);
  DocServiceOptions options;
  options.num_threads = 2;
  options.cache_bytes = 64 << 20;  // whole corpus stays resident
  DocService service(store.get(), options);

  std::vector<size_t> ids(48);
  Rng rng(4242);
  for (auto& id : ids) id = rng.Next() % collection.num_docs();
  ServeBatch batch;
  // Warm-up: populate the cache and grow the batch's buffers to capacity.
  for (int pass = 0; pass < 3; ++pass) {
    service.SubmitBatch(ids, &batch);
    for (const GetResult& r : batch.Wait()) ASSERT_TRUE(r.ok());
  }
  ASSERT_GE(service.Stats().cache.hits, ids.size());

  const uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int round = 0; round < 10; ++round) {
    service.SubmitBatch(ids, &batch);
    const std::vector<GetResult>& results = batch.Wait();
    for (size_t i = 0; i < ids.size(); ++i) {
      if (!results[i].ok()) FAIL() << results[i].status.ToString();
    }
  }
  const uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before) << "steady-state batched serving allocated";

  // The counted rounds really went through the full request path.
  service.Drain();
  EXPECT_EQ(service.Stats().requests, 13u * ids.size());
}

// ---------------------------------------------------------------------------
// Gzipx decode scratch.

TEST(HotPathTest, GzipxScratchDecompressIsByteIdentical) {
  const GzipxCompressor gz;
  GzipxDecodeScratch scratch;
  Rng rng(99);
  // A mix of shapes: empty, tiny, repetitive (match-heavy), random
  // (stored-block fallback), decoded through one reused scratch.
  std::vector<std::string> inputs;
  inputs.emplace_back();
  inputs.emplace_back("abc");
  inputs.emplace_back(std::string(100000, 'x'));
  std::string rep;
  for (int i = 0; i < 5000; ++i) rep += "the quick brown fox ";
  inputs.push_back(rep);
  std::string rnd(65536, '\0');
  for (auto& c : rnd) c = static_cast<char>(rng.Next() & 0xFF);
  inputs.push_back(rnd);

  for (const std::string& input : inputs) {
    std::string compressed;
    gz.Compress(input, &compressed);
    std::string fresh;
    std::string reused;
    ASSERT_TRUE(gz.Decompress(compressed, &fresh).ok());
    ASSERT_TRUE(gz.Decompress(compressed, &reused, &scratch).ok());
    ASSERT_EQ(fresh, input);
    ASSERT_EQ(reused, input);
  }
}

}  // namespace
}  // namespace rlz
