// The paper's qualitative claims, pinned as regression tests on a small
// corpus. These are miniature versions of the bench tables: if one of
// these breaks, the corresponding table's shape has regressed.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "codecs/int_codecs.h"
#include "core/rlz.h"
#include "corpus/generator.h"

namespace rlz {
namespace {

class PaperClaimsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CorpusOptions options;
    options.target_bytes = 3 << 20;
    options.seed = 2011;
    corpus_ = new Corpus(GenerateCorpus(options));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  struct DictRun {
    FactorStats stats;
    double unused = 0.0;
    std::vector<std::vector<Factor>> factors;
  };

  static DictRun Factorize(std::shared_ptr<const Dictionary> dict) {
    DictRun run;
    Factorizer factorizer(dict.get(), /*track_coverage=*/true);
    const Collection& c = corpus_->collection;
    run.factors.resize(c.num_docs());
    for (size_t i = 0; i < c.num_docs(); ++i) {
      factorizer.Factorize(c.doc(i), &run.factors[i]);
    }
    run.stats = factorizer.stats();
    run.unused = factorizer.UnusedFraction();
    return run;
  }

  static Corpus* corpus_;
};

Corpus* PaperClaimsTest::corpus_ = nullptr;

TEST_F(PaperClaimsTest, Table2AvgFactorGrowsWithDictionarySize) {
  const Collection& c = corpus_->collection;
  double prev = 0.0;
  for (const double frac : {0.005, 0.01, 0.02}) {
    auto dict = DictionaryBuilder::BuildSampled(
        c.data(), static_cast<size_t>(frac * c.size_bytes()), 1024);
    const DictRun run = Factorize(std::move(dict));
    EXPECT_GT(run.stats.avg_factor_length(), prev) << "fraction " << frac;
    prev = run.stats.avg_factor_length();
  }
  // Paper Table 2 range: averages in the tens.
  EXPECT_GT(prev, 10.0);
}

TEST_F(PaperClaimsTest, Table2UnusedGrowsWithDictionarySize) {
  const Collection& c = corpus_->collection;
  auto small = Factorize(DictionaryBuilder::BuildSampled(
      c.data(), static_cast<size_t>(0.005 * c.size_bytes()), 1024));
  auto large = Factorize(DictionaryBuilder::BuildSampled(
      c.data(), static_cast<size_t>(0.02 * c.size_bytes()), 1024));
  EXPECT_GE(large.unused, small.unused);
}

TEST_F(PaperClaimsTest, Figure3MostLengthsAreSmall) {
  // "the bulk of length values remain small" — and hence (§3.4) vbyte puts
  // most lengths in a single byte.
  const Collection& c = corpus_->collection;
  const DictRun run = Factorize(DictionaryBuilder::BuildSampled(
      c.data(), static_cast<size_t>(0.005 * c.size_bytes()), 1024));
  uint64_t small = 0;
  uint64_t total = 0;
  uint64_t one_byte = 0;
  for (const auto& doc : run.factors) {
    for (const Factor& f : doc) {
      ++total;
      if (f.len <= 100) ++small;
      if (f.len < 128) ++one_byte;
    }
  }
  EXPECT_GT(static_cast<double>(small) / total, 0.85);
  EXPECT_GT(static_cast<double>(one_byte) / total, 0.85);
}

TEST_F(PaperClaimsTest, Table4CodingSpaceOrdering) {
  // ZZ <= ZV <= UV and ZZ <= UZ <= UV in encoded size (Tables 4/5/8).
  const Collection& c = corpus_->collection;
  auto dict = std::shared_ptr<const Dictionary>(
      DictionaryBuilder::BuildSampled(
          c.data(), static_cast<size_t>(0.01 * c.size_bytes()), 1024));
  const DictRun run = Factorize(dict);
  auto size_of = [&](PairCoding coding) {
    return RlzArchive::BuildFromFactors(dict, run.factors, coding)
        ->payload_bytes();
  };
  const uint64_t zz = size_of(kZZ);
  const uint64_t zv = size_of(kZV);
  const uint64_t uz = size_of(kUZ);
  const uint64_t uv = size_of(kUV);
  EXPECT_LE(zz, zv);
  EXPECT_LE(zv, uv);
  EXPECT_LE(zz, uz);
  EXPECT_LE(uz, uv);
}

TEST_F(PaperClaimsTest, Section34ZlibOnPositionsHelpsPerDocument) {
  // "applying a compressor to the p values for each document separately
  // gave a significant boost" — Z positions must beat raw U32 positions.
  const Collection& c = corpus_->collection;
  auto dict = std::shared_ptr<const Dictionary>(
      DictionaryBuilder::BuildSampled(
          c.data(), static_cast<size_t>(0.01 * c.size_bytes()), 1024));
  const DictRun run = Factorize(dict);
  const uint64_t z_pos =
      RlzArchive::BuildFromFactors(dict, run.factors, kZV)->payload_bytes();
  const uint64_t u_pos =
      RlzArchive::BuildFromFactors(dict, run.factors, kUV)->payload_bytes();
  EXPECT_LT(static_cast<double>(z_pos), 0.9 * static_cast<double>(u_pos));
}

TEST_F(PaperClaimsTest, Section36PrefixDictionaryDegradationBounded) {
  const Collection& c = corpus_->collection;
  const size_t dict_bytes = static_cast<size_t>(0.01 * c.size_bytes());
  auto full = Factorize(
      DictionaryBuilder::BuildSampled(c.data(), dict_bytes, 1024));
  auto prefix10 = Factorize(
      DictionaryBuilder::BuildFromPrefix(c.data(), 0.10, dict_bytes, 1024));
  // Factor count inflation bounded (paper: ~1 percentage point of encoding
  // size; allow 2x factor-count inflation at this tiny scale).
  EXPECT_LT(static_cast<double>(prefix10.stats.num_factors),
            2.0 * static_cast<double>(full.stats.num_factors));
}

TEST_F(PaperClaimsTest, Section35SamplingInsensitiveToDocumentOrder) {
  const Corpus sorted = SortByUrl(*corpus_);
  const size_t dict_bytes =
      static_cast<size_t>(0.01 * corpus_->collection.size_bytes());
  auto crawl_dict = std::shared_ptr<const Dictionary>(
      DictionaryBuilder::BuildSampled(corpus_->collection.data(), dict_bytes,
                                      1024));
  auto url_dict = std::shared_ptr<const Dictionary>(
      DictionaryBuilder::BuildSampled(sorted.collection.data(), dict_bytes,
                                      1024));
  RlzBuildOptions build;
  build.coding = kZV;
  auto a = RlzArchive::Build(corpus_->collection, crawl_dict, build);
  auto b = RlzArchive::Build(sorted.collection, url_dict, build);
  const double pa = static_cast<double>(a->payload_bytes());
  const double pb = static_cast<double>(b->payload_bytes());
  // The paper sees "a fraction of a percent" at 426 GB; at a 3 MB test
  // corpus the sampling variance between orders is a few percent relative,
  // so the bound here only rules out an order-of-magnitude sensitivity.
  EXPECT_LT(std::abs(pa - pb) / pa, 0.10);
}

}  // namespace
}  // namespace rlz
