#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "zip/compressor.h"
#include "zip/gzipx.h"
#include "zip/huffman.h"
#include "zip/lzmax.h"
#include "zip/range_coder.h"

namespace rlz {
namespace {

// ---------------------------------------------------------------------------
// Huffman
// ---------------------------------------------------------------------------

TEST(HuffmanTest, LengthsSatisfyKraft) {
  Rng rng(1);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<uint64_t> freqs(286, 0);
    const int used = 2 + static_cast<int>(rng.Uniform(284));
    for (int i = 0; i < used; ++i) {
      freqs[rng.Uniform(freqs.size())] = 1 + rng.Uniform(100000);
    }
    const auto lengths = BuildHuffmanCodeLengths(freqs);
    double kraft = 0.0;
    for (size_t s = 0; s < freqs.size(); ++s) {
      EXPECT_EQ(lengths[s] > 0, freqs[s] > 0);
      if (lengths[s] > 0) {
        EXPECT_LE(lengths[s], kMaxHuffmanBits);
        kraft += 1.0 / static_cast<double>(1u << lengths[s]);
      }
    }
    EXPECT_LE(kraft, 1.0 + 1e-9);
  }
}

TEST(HuffmanTest, SingleSymbolGetsLengthOne) {
  std::vector<uint64_t> freqs(10, 0);
  freqs[3] = 42;
  const auto lengths = BuildHuffmanCodeLengths(freqs);
  EXPECT_EQ(lengths[3], 1);
}

TEST(HuffmanTest, SkewedFrequenciesGetShortCodes) {
  std::vector<uint64_t> freqs = {1000000, 10, 10, 10, 10, 1};
  const auto lengths = BuildHuffmanCodeLengths(freqs);
  for (size_t s = 1; s < freqs.size(); ++s) {
    EXPECT_LE(lengths[0], lengths[s]);
  }
}

TEST(HuffmanTest, LengthLimitEnforcedOnPathologicalInput) {
  // Fibonacci-like frequencies produce deep Huffman trees.
  std::vector<uint64_t> freqs;
  uint64_t a = 1;
  uint64_t b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs.push_back(a);
    const uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto lengths = BuildHuffmanCodeLengths(freqs, 15);
  double kraft = 0.0;
  for (uint8_t l : lengths) {
    ASSERT_GT(l, 0);
    ASSERT_LE(l, 15);
    kraft += 1.0 / static_cast<double>(1u << l);
  }
  EXPECT_LE(kraft, 1.0 + 1e-9);
}

TEST(HuffmanTest, EncodeDecodeRoundTrip) {
  Rng rng(2);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<uint64_t> freqs(64, 0);
    for (auto& f : freqs) f = rng.Uniform(1000);
    freqs[0] = 1;  // ensure at least one symbol
    const auto lengths = BuildHuffmanCodeLengths(freqs);
    HuffmanEncoder enc(lengths);
    HuffmanDecoder dec;
    ASSERT_TRUE(dec.Init(lengths).ok());

    std::vector<uint32_t> symbols;
    for (int i = 0; i < 5000; ++i) {
      uint32_t s = static_cast<uint32_t>(rng.Uniform(freqs.size()));
      while (freqs[s] == 0) s = static_cast<uint32_t>(rng.Uniform(freqs.size()));
      symbols.push_back(s);
    }
    std::string buf;
    BitWriter bw(&buf);
    for (uint32_t s : symbols) enc.Write(&bw, s);
    bw.Finish();
    BitReader br(buf);
    for (uint32_t s : symbols) {
      ASSERT_EQ(dec.Decode(&br), static_cast<int32_t>(s));
    }
  }
}

TEST(HuffmanTest, DecoderRejectsOversubscribedCode) {
  // Three codes of length 1 violate Kraft.
  HuffmanDecoder dec;
  EXPECT_EQ(dec.Init({1, 1, 1}).code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Range coder
// ---------------------------------------------------------------------------

TEST(RangeCoderTest, BitRoundTrip) {
  Rng rng(3);
  std::vector<int> bits;
  for (int i = 0; i < 20000; ++i) bits.push_back(rng.Bernoulli(0.2) ? 1 : 0);

  std::string buf;
  {
    RangeEncoder enc(&buf);
    BitProb prob = kProbInit;
    for (int b : bits) enc.EncodeBit(&prob, b);
    enc.Flush();
  }
  {
    RangeDecoder dec(buf);
    BitProb prob = kProbInit;
    for (int b : bits) ASSERT_EQ(dec.DecodeBit(&prob), b);
    EXPECT_FALSE(dec.overflowed());
  }
  // Adaptive coding of a skewed stream must beat 1 bit per symbol.
  EXPECT_LT(buf.size() * 8, bits.size());
}

TEST(RangeCoderTest, DirectBitsRoundTrip) {
  Rng rng(4);
  std::vector<std::pair<uint32_t, int>> fields;
  for (int i = 0; i < 3000; ++i) {
    const int nbits = 1 + static_cast<int>(rng.Uniform(30));
    fields.emplace_back(static_cast<uint32_t>(rng.Next()) &
                            ((nbits == 32) ? ~0u : ((1u << nbits) - 1)),
                        nbits);
  }
  std::string buf;
  {
    RangeEncoder enc(&buf);
    for (auto [v, n] : fields) enc.EncodeDirect(v, n);
    enc.Flush();
  }
  RangeDecoder dec(buf);
  for (auto [v, n] : fields) ASSERT_EQ(dec.DecodeDirect(n), v);
}

TEST(RangeCoderTest, BitTreeRoundTrip) {
  Rng rng(5);
  std::vector<uint32_t> symbols;
  for (int i = 0; i < 5000; ++i) {
    symbols.push_back(static_cast<uint32_t>(rng.Uniform(256)));
  }
  std::string buf;
  {
    RangeEncoder enc(&buf);
    std::vector<BitProb> probs(256, kProbInit);
    for (uint32_t s : symbols) EncodeBitTree(&enc, probs.data(), 8, s);
    enc.Flush();
  }
  RangeDecoder dec(buf);
  std::vector<BitProb> probs(256, kProbInit);
  for (uint32_t s : symbols) {
    ASSERT_EQ(DecodeBitTree(&dec, probs.data(), 8), s);
  }
}

// ---------------------------------------------------------------------------
// Compressors (shared behaviour, parameterized)
// ---------------------------------------------------------------------------

class CompressorTest : public ::testing::TestWithParam<CompressorId> {
 protected:
  const Compressor* compressor() const { return GetCompressor(GetParam()); }

  void ExpectRoundTrip(const std::string& input) {
    std::string compressed;
    compressor()->Compress(input, &compressed);
    std::string output;
    const Status s = compressor()->Decompress(compressed, &output);
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(output, input);
  }
};

TEST_P(CompressorTest, Empty) { ExpectRoundTrip(""); }

TEST_P(CompressorTest, SingleByte) { ExpectRoundTrip("x"); }

TEST_P(CompressorTest, ShortAscii) {
  ExpectRoundTrip("hello, hello, hello world!");
}

TEST_P(CompressorTest, AllSameByte) { ExpectRoundTrip(std::string(100000, 'a')); }

TEST_P(CompressorTest, RandomIncompressible) {
  Rng rng(6);
  std::string input(50000, '\0');
  for (auto& c : input) c = static_cast<char>(rng.Uniform(256));
  ExpectRoundTrip(input);
}

TEST_P(CompressorTest, RepetitiveText) {
  std::string input;
  Rng rng(7);
  const std::string phrase = "the quick brown fox jumps over the lazy dog. ";
  while (input.size() < 200000) {
    input += phrase;
    if (rng.Bernoulli(0.1)) input += std::to_string(rng.Next() % 1000);
  }
  std::string compressed;
  compressor()->Compress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 5);
  std::string output;
  ASSERT_TRUE(compressor()->Decompress(compressed, &output).ok());
  EXPECT_EQ(output, input);
}

TEST_P(CompressorTest, BinaryWithNulBytes) {
  Rng rng(8);
  std::string input;
  for (int i = 0; i < 30000; ++i) {
    input.push_back(static_cast<char>(rng.Uniform(4)));
  }
  ExpectRoundTrip(input);
}

TEST_P(CompressorTest, ManySmallInputsIndependent) {
  // Factor streams are compressed per document; make sure small inputs are
  // handled standalone.
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    std::string input;
    const size_t len = rng.Uniform(200);
    for (size_t k = 0; k < len; ++k) {
      input.push_back(static_cast<char>('a' + rng.Uniform(6)));
    }
    ExpectRoundTrip(input);
  }
}

TEST_P(CompressorTest, DetectsTruncation) {
  std::string input(10000, 'q');
  for (size_t i = 0; i < input.size(); i += 17) input[i] = 'z';
  std::string compressed;
  compressor()->Compress(input, &compressed);
  std::string output;
  EXPECT_FALSE(compressor()
                   ->Decompress(std::string_view(compressed)
                                    .substr(0, compressed.size() / 2),
                                &output)
                   .ok());
}

TEST_P(CompressorTest, DetectsBitFlip) {
  std::string input = "some moderately compressible payload ";
  for (int i = 0; i < 8; ++i) input += input;
  std::string compressed;
  compressor()->Compress(input, &compressed);
  // Flip a byte in the middle of the payload (not the header).
  std::string corrupted = compressed;
  corrupted[corrupted.size() / 2] ^= 0x40;
  std::string output;
  EXPECT_FALSE(compressor()->Decompress(corrupted, &output).ok());
}

TEST_P(CompressorTest, DetectsBadMagic) {
  std::string compressed;
  compressor()->Compress("abc", &compressed);
  compressed[0] = '\x00';
  std::string output;
  EXPECT_EQ(compressor()->Decompress(compressed, &output).code(),
            StatusCode::kCorruption);
}

TEST_P(CompressorTest, AppendsToExistingOutput) {
  std::string compressed;
  compressor()->Compress("payload", &compressed);
  std::string output = "prefix-";
  ASSERT_TRUE(compressor()->Decompress(compressed, &output).ok());
  EXPECT_EQ(output, "prefix-payload");
}

INSTANTIATE_TEST_SUITE_P(Both, CompressorTest,
                         ::testing::Values(CompressorId::kGzipx,
                                           CompressorId::kLzmax),
                         [](const auto& info) {
                           return info.param == CompressorId::kGzipx ? "Gzipx"
                                                                     : "Lzmax";
                         });

// ---------------------------------------------------------------------------
// Family-shape expectations (DESIGN.md §4): lzmax compresses redundant data
// with long-range repetition better than gzipx, because its window is not
// limited to 32 KB.
// ---------------------------------------------------------------------------

TEST(CompressorShapeTest, LzmaxBeatsGzipxOnLongRangeRedundancy) {
  Rng rng(10);
  // A 64 KB "template" repeated with small edits at ~100 KB intervals:
  // out of reach for a 32 KB window, trivial for a large one.
  std::string page(64 * 1024, '\0');
  for (auto& c : page) c = static_cast<char>('a' + rng.Uniform(26));
  std::string input;
  for (int i = 0; i < 8; ++i) {
    input += page;
    std::string filler(40 * 1024, '\0');
    for (auto& c : filler) c = static_cast<char>(rng.Uniform(256));
    input += filler;
  }
  std::string gz;
  GetCompressor(CompressorId::kGzipx)->Compress(input, &gz);
  std::string lz;
  GetCompressor(CompressorId::kLzmax)->Compress(input, &lz);
  EXPECT_LT(lz.size(), gz.size() * 0.8);
}

TEST(GzipxTest, WindowLimitRespected) {
  // Repetition at a distance beyond 32 KB must still round-trip (as
  // literals / local matches), just with less compression.
  std::string block(40 * 1024, '\0');
  Rng rng(11);
  for (auto& c : block) c = static_cast<char>('a' + rng.Uniform(26));
  const std::string input = block + block;
  const GzipxCompressor gz;
  std::string compressed;
  gz.Compress(input, &compressed);
  std::string output;
  ASSERT_TRUE(gz.Decompress(compressed, &output).ok());
  EXPECT_EQ(output, input);
}

TEST(LzmaxTest, RepMatchesExploitStructuredData) {
  // Records with a fixed stride: rep0 distances should kick in.
  std::string input;
  Rng rng(12);
  std::string record = "field1=AAAA|field2=BBBB|field3=CCCC|";
  for (int i = 0; i < 3000; ++i) {
    input += record;
    input += std::to_string(i % 7);
  }
  const LzmaxCompressor lz;
  std::string compressed;
  lz.Compress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 20);
  std::string output;
  ASSERT_TRUE(lz.Decompress(compressed, &output).ok());
  EXPECT_EQ(output, input);
}

}  // namespace
}  // namespace rlz
