#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "search/inverted_index.h"
#include "search/query_log.h"
#include "search/tokenizer.h"

namespace rlz {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  const auto terms = Tokenize("Hello, World! FOO bar42");
  const std::vector<std::string> expected = {"hello", "world", "foo", "bar42"};
  EXPECT_EQ(terms, expected);
}

TEST(TokenizerTest, SkipsMarkup) {
  const auto terms = Tokenize("<html><body class=\"x\">text <b>bold</b></body>");
  const std::vector<std::string> expected = {"text", "bold"};
  EXPECT_EQ(terms, expected);
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... --- !!!").empty());
  EXPECT_TRUE(Tokenize("<div><span></span></div>").empty());
}

TEST(TokenizerTest, TagSplitsAdjacentWords) {
  const auto terms = Tokenize("alpha<br>beta");
  const std::vector<std::string> expected = {"alpha", "beta"};
  EXPECT_EQ(terms, expected);
}

Collection TinyCollection() {
  Collection c;
  c.Append("<html>apple banana cherry</html>");
  c.Append("<html>apple apple banana</html>");
  c.Append("<html>durian elderberry</html>");
  c.Append("<html>apple durian durian durian</html>");
  return c;
}

TEST(InvertedIndexTest, DocFrequencies) {
  const auto index = InvertedIndex::Build(TinyCollection());
  EXPECT_EQ(index.DocFrequency("apple"), 3u);
  EXPECT_EQ(index.DocFrequency("banana"), 2u);
  EXPECT_EQ(index.DocFrequency("durian"), 2u);
  EXPECT_EQ(index.DocFrequency("missing"), 0u);
  EXPECT_EQ(index.num_docs(), 4u);
}

TEST(InvertedIndexTest, QueryRanksTfHigher) {
  const auto index = InvertedIndex::Build(TinyCollection());
  const auto hits = index.Query({"durian"}, 10);
  ASSERT_EQ(hits.size(), 2u);
  // Doc 3 has tf=3 for durian; doc 2 has tf=1.
  EXPECT_EQ(hits[0].doc, 3u);
  EXPECT_EQ(hits[1].doc, 2u);
  EXPECT_GT(hits[0].score, hits[1].score);
}

TEST(InvertedIndexTest, MultiTermQueryUnionsPostings) {
  const auto index = InvertedIndex::Build(TinyCollection());
  const auto hits = index.Query({"cherry", "elderberry"}, 10);
  ASSERT_EQ(hits.size(), 2u);
  std::vector<uint32_t> docs = {hits[0].doc, hits[1].doc};
  std::sort(docs.begin(), docs.end());
  EXPECT_EQ(docs, (std::vector<uint32_t>{0, 2}));
}

TEST(InvertedIndexTest, RareTermScoresAboveCommonTerm) {
  const auto index = InvertedIndex::Build(TinyCollection());
  // "cherry" appears once in one doc; "apple" is everywhere. A doc matching
  // the rare term should outrank a doc matching only the common one.
  const auto hits = index.Query({"cherry", "apple"}, 10);
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].doc, 0u);  // contains both
}

TEST(InvertedIndexTest, TopKLimit) {
  const auto index = InvertedIndex::Build(TinyCollection());
  EXPECT_EQ(index.Query({"apple"}, 2).size(), 2u);
  EXPECT_EQ(index.Query({"apple"}, 0).size(), 0u);
}

TEST(InvertedIndexTest, EmptyQueryReturnsNothing) {
  const auto index = InvertedIndex::Build(TinyCollection());
  EXPECT_TRUE(index.Query({}, 10).empty());
  EXPECT_TRUE(index.Query({"zzzz"}, 10).empty());
}

TEST(InvertedIndexTest, TermsByFrequencySorted) {
  const auto index = InvertedIndex::Build(TinyCollection());
  const auto terms = index.TermsByFrequency();
  ASSERT_FALSE(terms.empty());
  EXPECT_EQ(terms[0].first, "apple");  // collection frequency 4
  for (size_t i = 1; i < terms.size(); ++i) {
    EXPECT_GE(terms[i - 1].second, terms[i].second);
  }
}

class QueryLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CorpusOptions options;
    options.target_bytes = 1 << 20;
    options.seed = 61;
    corpus_ = GenerateCorpus(options);
    index_ = InvertedIndex::Build(corpus_.collection);
  }
  Corpus corpus_;
  InvertedIndex index_;
};

TEST_F(QueryLogTest, GeneratesRequestedQueryCount) {
  QueryLogOptions options;
  options.num_queries = 100;
  const auto queries = GenerateQueries(index_, options);
  EXPECT_EQ(queries.size(), 100u);
  for (const auto& q : queries) {
    EXPECT_GE(q.size(), options.terms_per_query_min);
    EXPECT_LE(q.size(), options.terms_per_query_max);
  }
}

TEST_F(QueryLogTest, QueriesUseIndexedTerms) {
  QueryLogOptions options;
  options.num_queries = 50;
  const auto queries = GenerateQueries(index_, options);
  for (const auto& q : queries) {
    for (const auto& term : q) {
      EXPECT_GT(index_.DocFrequency(term), 0u) << term;
    }
  }
}

TEST_F(QueryLogTest, PatternRespectsCapAndTopK) {
  QueryLogOptions options;
  options.num_queries = 200;
  options.top_k = 20;
  options.cap = 1000;
  const auto queries = GenerateQueries(index_, options);
  const auto pattern = BuildQueryLogPattern(index_, queries, options);
  EXPECT_LE(pattern.size(), options.cap);
  EXPECT_GT(pattern.size(), 100u);  // real queries should produce hits
  for (uint32_t doc : pattern) {
    EXPECT_LT(doc, corpus_.collection.num_docs());
  }
}

TEST_F(QueryLogTest, PatternIsDeterministic) {
  QueryLogOptions options;
  options.num_queries = 50;
  const auto q1 = GenerateQueries(index_, options);
  const auto q2 = GenerateQueries(index_, options);
  EXPECT_EQ(q1, q2);
  EXPECT_EQ(BuildQueryLogPattern(index_, q1, options),
            BuildQueryLogPattern(index_, q2, options));
}

TEST(SequentialPatternTest, WrapsAround) {
  const auto p = BuildSequentialPattern(3, 7);
  const std::vector<uint32_t> expected = {0, 1, 2, 0, 1, 2, 0};
  EXPECT_EQ(p, expected);
}

TEST(SequentialPatternTest, EmptyCollection) {
  EXPECT_TRUE(BuildSequentialPattern(0, 5).empty());
}

}  // namespace
}  // namespace rlz
