// Robustness fuzzing (deterministic): every decoder must return a Status —
// never crash, hang, or allocate unboundedly — on arbitrary bytes and on
// mutated valid streams.

#include <string>

#include <gtest/gtest.h>

#include "codecs/int_codecs.h"
#include "core/rlz.h"
#include "corpus/collection.h"
#include "io/file.h"
#include "util/random.h"
#include "zip/bentley_mcilroy.h"
#include "zip/compressor.h"
#include "zip/gzipx.h"
#include "zip/lzmax.h"

namespace rlz {
namespace {

std::string RandomBytes(Rng& rng, size_t n) {
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>(rng.Uniform(256));
  return s;
}

// Valid-looking headers with random tails hit deeper code paths.
std::string WithMagic(Rng& rng, uint8_t magic, size_t n) {
  std::string s = RandomBytes(rng, n);
  if (!s.empty()) s[0] = static_cast<char>(magic);
  return s;
}

TEST(FuzzTest, GzipxDecompressArbitraryBytes) {
  Rng rng(1);
  std::string out;
  for (int iter = 0; iter < 300; ++iter) {
    const std::string input = iter % 2 == 0
                                  ? RandomBytes(rng, rng.Uniform(300))
                                  : WithMagic(rng, 0xC7, 1 + rng.Uniform(300));
    out.clear();
    (void)GzipxCompressor().Decompress(input, &out);  // must not crash
    EXPECT_LT(out.size(), 100u << 20);
  }
}

TEST(FuzzTest, LzmaxDecompressArbitraryBytes) {
  Rng rng(2);
  std::string out;
  for (int iter = 0; iter < 300; ++iter) {
    const std::string input = iter % 2 == 0
                                  ? RandomBytes(rng, rng.Uniform(300))
                                  : WithMagic(rng, 0xC8, 1 + rng.Uniform(300));
    out.clear();
    (void)LzmaxCompressor().Decompress(input, &out);
    EXPECT_LT(out.size(), 100u << 20);
  }
}

TEST(FuzzTest, BmDecodeArbitraryBytes) {
  Rng rng(3);
  const BmPreprocessor pre;
  std::string out;
  for (int iter = 0; iter < 300; ++iter) {
    out.clear();
    (void)pre.Decode(RandomBytes(rng, rng.Uniform(300)), &out);
    EXPECT_LT(out.size(), 100u << 20);
  }
}

class MutatedStreamTest : public ::testing::TestWithParam<CompressorId> {};

TEST_P(MutatedStreamTest, HeavilyMutatedStreamsNeverCrash) {
  Rng rng(4);
  const Compressor* compressor = GetCompressor(GetParam());
  std::string payload;
  for (int i = 0; i < 200; ++i) {
    payload += "line " + std::to_string(i % 13) + " of structured text\n";
  }
  std::string compressed;
  compressor->Compress(payload, &compressed);

  std::string out;
  for (int iter = 0; iter < 400; ++iter) {
    std::string mutated = compressed;
    const int flips = 1 + static_cast<int>(rng.Uniform(8));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.Uniform(mutated.size())] ^=
          static_cast<char>(1 << rng.Uniform(8));
    }
    out.clear();
    const Status s = compressor->Decompress(mutated, &out);
    if (s.ok()) {
      // Extremely unlikely, but if it "succeeds" the CRC must have held,
      // which means the mutation round-tripped to identical bytes.
      EXPECT_EQ(out, payload);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Both, MutatedStreamTest,
                         ::testing::Values(CompressorId::kGzipx,
                                           CompressorId::kLzmax),
                         [](const auto& info) {
                           return info.param == CompressorId::kGzipx ? "Gzipx"
                                                                     : "Lzmax";
                         });

TEST(FuzzTest, FactorCoderArbitraryBytes) {
  Rng rng(5);
  for (const char* name : {"ZZ", "ZV", "UZ", "UV"}) {
    const FactorCoder coder(*PairCoding::FromName(name));
    for (int iter = 0; iter < 200; ++iter) {
      std::vector<Factor> factors;
      (void)coder.DecodeFactors(RandomBytes(rng, rng.Uniform(200)), &factors,
                                nullptr);
      EXPECT_LT(factors.size(), 10u << 20);
    }
  }
}

TEST(FuzzTest, IntCodecsArbitraryBytes) {
  Rng rng(6);
  for (IntCodecId id : {IntCodecId::kU32, IntCodecId::kVByte,
                        IntCodecId::kSimple9, IntCodecId::kPForDelta}) {
    const IntCodec* codec = GetIntCodec(id);
    for (int iter = 0; iter < 200; ++iter) {
      const std::string input = RandomBytes(rng, rng.Uniform(120));
      std::vector<uint32_t> out;
      size_t consumed = 0;
      (void)codec->Decode(input, rng.Uniform(64), &out, &consumed);
      EXPECT_LE(consumed, input.size());
    }
  }
}

TEST(FuzzTest, ArchiveLoadArbitraryFiles) {
  Rng rng(7);
  const std::string path = ::testing::TempDir() + "/fuzz_archive.bin";
  for (int iter = 0; iter < 60; ++iter) {
    std::string content = RandomBytes(rng, rng.Uniform(500));
    if (iter % 2 == 0 && content.size() >= 4) {
      content[0] = 'R';
      content[1] = 'L';
      content[2] = 'Z';
      content[3] = 'A';
    }
    ASSERT_TRUE(WriteFile(path, content).ok());
    EXPECT_FALSE(RlzArchive::Load(path).ok());
  }
  std::remove(path.c_str());
}

TEST(FuzzTest, CollectionLoadArbitraryFiles) {
  Rng rng(8);
  const std::string path = ::testing::TempDir() + "/fuzz_collection.bin";
  for (int iter = 0; iter < 60; ++iter) {
    std::string content = RandomBytes(rng, rng.Uniform(500));
    if (iter % 2 == 0 && content.size() >= 4) {
      content[0] = 'R';
      content[1] = 'C';
      content[2] = 'O';
      content[3] = '1';
    }
    ASSERT_TRUE(WriteFile(path, content).ok());
    (void)Collection::Load(path);  // any Status is fine; no crash
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rlz
