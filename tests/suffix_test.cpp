#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "suffix/matcher.h"
#include "suffix/suffix_array.h"
#include "util/random.h"

namespace rlz {
namespace {

std::string RandomString(Rng& rng, size_t len, int alphabet) {
  std::string s(len, '\0');
  for (auto& c : s) {
    c = static_cast<char>('a' + rng.Uniform(alphabet));
  }
  return s;
}

TEST(SuffixArrayTest, EmptyAndSingle) {
  EXPECT_TRUE(BuildSuffixArray("").empty());
  EXPECT_EQ(BuildSuffixArray("x"), std::vector<int32_t>{0});
}

TEST(SuffixArrayTest, Banana) {
  // banana: suffixes sorted = a(5), ana(3), anana(1), banana(0), na(4), nana(2)
  const std::vector<int32_t> expected = {5, 3, 1, 0, 4, 2};
  EXPECT_EQ(BuildSuffixArray("banana"), expected);
}

TEST(SuffixArrayTest, PaperDictionaryExample) {
  // Table 1 of the paper: d = cabbaabba. Sorted suffixes are
  // a, aabba, abba, abbaabba, ba, baabba, bba, bbaabba, cabbaabba,
  // i.e. 1-based start positions 9 5 6 2 8 4 7 3 1 (the paper's printed
  // "SA" row is the inverse permutation — rank by text position).
  const std::vector<int32_t> expected = {8, 4, 5, 1, 7, 3, 6, 2, 0};
  EXPECT_EQ(BuildSuffixArray("cabbaabba"), expected);
}

TEST(SuffixArrayTest, AllEqualCharacters) {
  const std::string s(500, 'z');
  const auto sa = BuildSuffixArray(s);
  ASSERT_TRUE(IsValidSuffixArray(s, sa));
  // Shortest suffix first.
  EXPECT_EQ(sa.front(), 499);
  EXPECT_EQ(sa.back(), 0);
}

TEST(SuffixArrayTest, ContainsNulBytes) {
  std::string s = "ab";
  s.push_back('\0');
  s += "ab";
  s.push_back('\0');
  s += "c";
  const auto sa = BuildSuffixArray(s);
  EXPECT_TRUE(IsValidSuffixArray(s, sa));
}

TEST(SuffixArrayTest, FullByteAlphabet) {
  Rng rng(99);
  std::string s(2000, '\0');
  for (auto& c : s) c = static_cast<char>(rng.Uniform(256));
  const auto sa = BuildSuffixArray(s);
  EXPECT_TRUE(IsValidSuffixArray(s, sa));
}

struct SaCase {
  const char* name;
  size_t len;
  int alphabet;
};

class SuffixArrayMatchesNaiveTest : public ::testing::TestWithParam<SaCase> {};

TEST_P(SuffixArrayMatchesNaiveTest, MatchesNaive) {
  const SaCase& c = GetParam();
  Rng rng(static_cast<uint64_t>(c.len * 31 + c.alphabet));
  for (int iter = 0; iter < 8; ++iter) {
    const std::string s = RandomString(rng, c.len, c.alphabet);
    EXPECT_EQ(BuildSuffixArray(s), BuildSuffixArrayNaive(s))
        << "case " << c.name << " iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SuffixArrayMatchesNaiveTest,
    ::testing::Values(SaCase{"tiny_binary", 10, 2},
                      SaCase{"small_binary", 100, 2},
                      SaCase{"small_dna", 200, 4},
                      SaCase{"medium_english", 1000, 26},
                      SaCase{"repetitive", 800, 3},
                      SaCase{"large_binary", 3000, 2}),
    [](const auto& info) { return info.param.name; });

TEST(SuffixArrayTest, PeriodicStrings) {
  for (const char* pat : {"ab", "abc", "aab", "abab"}) {
    std::string s;
    while (s.size() < 400) s += pat;
    const auto sa = BuildSuffixArray(s);
    EXPECT_TRUE(IsValidSuffixArray(s, sa)) << pat;
  }
}

TEST(MatcherTest, PaperRefineExample) {
  // Table 1, step by step: searching x = bbaancabb in d = cabbaabba.
  // Paper bounds are 1-based; ours are 0-based (subtract 1).
  const std::string d = "cabbaabba";
  SuffixMatcher matcher(d);
  int32_t lb = 0;
  int32_t rb = 8;
  ASSERT_TRUE(matcher.Refine(&lb, &rb, 0, 'b'));
  EXPECT_EQ(lb, 4);  // paper: 5
  EXPECT_EQ(rb, 7);  // paper: 8
  ASSERT_TRUE(matcher.Refine(&lb, &rb, 1, 'b'));
  EXPECT_EQ(lb, 6);  // paper: 7
  EXPECT_EQ(rb, 7);  // paper: 8
  // Both "bba" and "bbaabba" match prefix "bba" (the paper's trace narrows
  // to a single suffix here already; the interval semantics keep both).
  ASSERT_TRUE(matcher.Refine(&lb, &rb, 2, 'a'));
  EXPECT_EQ(lb, 6);
  EXPECT_EQ(rb, 7);
  // Fourth character: suffix "bba" is exhausted, only "bbaabba" survives —
  // the paper's (8, 8), 0-based (7, 7).
  ASSERT_TRUE(matcher.Refine(&lb, &rb, 3, 'a'));
  EXPECT_EQ(lb, 7);
  EXPECT_EQ(rb, 7);
  // Fifth character 'n' does not occur: refinement fails.
  int32_t lb2 = lb;
  int32_t rb2 = rb;
  EXPECT_FALSE(matcher.Refine(&lb2, &rb2, 4, 'n'));
  // The surviving suffix is d[3..] = "baabba"... SA[7] = 2 (paper SA[8]=3).
  EXPECT_EQ(matcher.sa()[lb], 2);
}

TEST(MatcherTest, PaperLongestMatches) {
  const std::string d = "cabbaabba";
  SuffixMatcher matcher(d);
  // First factor of x = bbaancabb: "bbaa" at paper offset 3 (0-based 2).
  Match m = matcher.LongestMatch("bbaancabb");
  EXPECT_EQ(m.len, 4);
  EXPECT_EQ(d.substr(m.pos, m.len), "bbaa");
  // 'n' does not occur at all.
  m = matcher.LongestMatch("ncabb");
  EXPECT_EQ(m.len, 0);
  // Final factor "cabb" at paper offset 1 (0-based 0).
  m = matcher.LongestMatch("cabb");
  EXPECT_EQ(m.len, 4);
  EXPECT_EQ(m.pos, 0);
}

Match NaiveLongestMatch(std::string_view text, std::string_view pattern) {
  Match best;
  for (size_t start = 0; start < text.size(); ++start) {
    size_t l = 0;
    while (l < pattern.size() && start + l < text.size() &&
           text[start + l] == pattern[l]) {
      ++l;
    }
    if (static_cast<int32_t>(l) > best.len) {
      best.len = static_cast<int32_t>(l);
      best.pos = static_cast<int32_t>(start);
    }
  }
  return best;
}

class MatcherPropertyTest : public ::testing::TestWithParam<bool> {};

TEST_P(MatcherPropertyTest, LongestMatchMatchesNaive) {
  const bool jump_table = GetParam();
  Rng rng(4242);
  for (int iter = 0; iter < 30; ++iter) {
    const std::string text = RandomString(rng, 300, 3);
    SuffixMatcher matcher(text, {}, jump_table);
    for (int q = 0; q < 40; ++q) {
      std::string pattern = RandomString(rng, 1 + rng.Uniform(20), 3);
      // Half the queries are substrings of the text (guaranteed matches).
      if (q % 2 == 0 && text.size() > 10) {
        const size_t start = rng.Uniform(text.size() - 5);
        pattern = text.substr(start, 1 + rng.Uniform(10));
      }
      const Match got = matcher.LongestMatch(pattern);
      const Match want = NaiveLongestMatch(text, pattern);
      ASSERT_EQ(got.len, want.len) << "pattern " << pattern;
      if (got.len > 0) {
        // Any position with the same match length is acceptable.
        EXPECT_EQ(text.substr(got.pos, got.len), pattern.substr(0, got.len));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(JumpTable, MatcherPropertyTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "WithJumpTable" : "PureBinarySearch";
                         });

TEST(MatcherTest, MatchAcrossFullText) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  SuffixMatcher matcher(text);
  const Match m = matcher.LongestMatch(text);
  EXPECT_EQ(m.len, static_cast<int32_t>(text.size()));
  EXPECT_EQ(m.pos, 0);
}

TEST(MatcherTest, EmptyPattern) {
  SuffixMatcher matcher("abc");
  const Match m = matcher.LongestMatch("");
  EXPECT_EQ(m.len, 0);
}

TEST(MatcherTest, SingleCharText) {
  SuffixMatcher matcher("a");
  EXPECT_EQ(matcher.LongestMatch("aaa").len, 1);
  EXPECT_EQ(matcher.LongestMatch("b").len, 0);
}

// ---------------------------------------------------------------------------
// Property test: the jump-table fast path must be indistinguishable from
// the pure binary-search path — same length AND same (leftmost-lowest SA)
// position — on every input. The jump table skips the first two Refine
// rounds and excludes length-1 suffixes, which is exactly where a silent
// divergence would hide.

// Runs every pattern through both matchers (shared suffix array, built
// once) and requires identical Match results.
void CrossCheckMatchers(const std::string& text,
                        const std::vector<std::string>& patterns,
                        const char* label) {
  const std::vector<int32_t> sa = BuildSuffixArray(text);
  const SuffixMatcher with_jump(text, sa, /*build_jump_table=*/true);
  const SuffixMatcher no_jump(text, sa, /*build_jump_table=*/false);
  for (const std::string& pattern : patterns) {
    const Match a = with_jump.LongestMatch(pattern);
    const Match b = no_jump.LongestMatch(pattern);
    ASSERT_EQ(a.len, b.len)
        << label << ": length diverged on pattern of size " << pattern.size();
    ASSERT_EQ(a.pos, b.pos)
        << label << ": position diverged on pattern of size " << pattern.size();
  }
}

// Patterns that stress a given text: its substrings (including suffixes of
// length 1 and 2), mutated substrings, overshooting prefixes, and random
// noise over the full byte alphabet.
std::vector<std::string> StressPatterns(const std::string& text, Rng& rng) {
  std::vector<std::string> patterns;
  patterns.push_back("");
  if (!text.empty()) {
    patterns.push_back(text);                        // full text
    patterns.push_back(text.substr(text.size() - 1));  // length-1 suffix
    patterns.push_back(text + "x");                  // overshoot at the end
  }
  for (int i = 0; i < 60; ++i) {
    if (text.empty()) break;
    const size_t pos = rng.Next() % text.size();
    const size_t len = 1 + rng.Next() % std::min<size_t>(64, text.size() - pos);
    std::string p = text.substr(pos, len);
    patterns.push_back(p);
    // Mutate one byte so matches break mid-pattern at arbitrary offsets
    // (offset 0 and 1 exercise the jump table's no-2-char-match fallback).
    std::string q = p;
    q[rng.Next() % q.size()] ^= static_cast<char>(1 + rng.Next() % 255);
    patterns.push_back(q);
  }
  for (int i = 0; i < 20; ++i) {
    std::string p(1 + rng.Next() % 8, '\0');
    for (auto& c : p) c = static_cast<char>(rng.Next() % 256);
    patterns.push_back(p);
  }
  return patterns;
}

TEST(MatcherPropertyTest, JumpTableMatchesBinarySearchOnRandomTexts) {
  Rng rng(20110613);
  for (const int alphabet : {2, 4, 26, 255}) {
    const std::string text = RandomString(rng, 2000, alphabet);
    CrossCheckMatchers(text, StressPatterns(text, rng), "random");
  }
}

TEST(MatcherPropertyTest, JumpTableMatchesBinarySearchOnRepetitiveTexts) {
  Rng rng(42);
  for (const char* period : {"a", "ab", "aab", "abcabd"}) {
    std::string text;
    while (text.size() < 1500) text += period;
    CrossCheckMatchers(text, StressPatterns(text, rng), period);
  }
}

TEST(MatcherPropertyTest, JumpTableMatchesBinarySearchWithNulBytes) {
  Rng rng(7);
  // NUL-heavy text: key 0x0000 occupies jump-table slot 0, and suffixes
  // ending in NUL stress the excluded-length-1 bookkeeping.
  std::string text;
  for (int i = 0; i < 800; ++i) {
    text.push_back(static_cast<char>(rng.Next() % 3));  // '\0','\1','\2'
  }
  std::vector<std::string> patterns = StressPatterns(text, rng);
  patterns.push_back(std::string(1, '\0'));
  patterns.push_back(std::string(2, '\0'));
  CrossCheckMatchers(text, patterns, "nul");
}

TEST(MatcherPropertyTest, JumpTableMatchesBinarySearchOnTinyTexts) {
  // Length 0/1/2 texts sit at the jump table's build threshold (it is only
  // built for texts of length >= 2); length-1 suffixes dominate.
  for (const char* text : {"", "a", "ab", "aa", "ba"}) {
    std::vector<std::string> patterns = {"",  "a",  "b",  "aa", "ab",
                                         "ba", "bb", "aba", "x"};
    CrossCheckMatchers(text, patterns, "tiny");
  }
  // A pattern whose only match is the final (length-1) suffix: the jump
  // table has no entry for it, so the fast path must fall back correctly.
  const std::string text = "bbbbbbba";
  std::vector<std::string> patterns = {"a", "ab", "ac", "aa"};
  CrossCheckMatchers(text, patterns, "last-suffix");
}

}  // namespace
}  // namespace rlz
