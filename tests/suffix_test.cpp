#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "suffix/matcher.h"
#include "suffix/suffix_array.h"
#include "util/random.h"

namespace rlz {
namespace {

std::string RandomString(Rng& rng, size_t len, int alphabet) {
  std::string s(len, '\0');
  for (auto& c : s) {
    c = static_cast<char>('a' + rng.Uniform(alphabet));
  }
  return s;
}

TEST(SuffixArrayTest, EmptyAndSingle) {
  EXPECT_TRUE(BuildSuffixArray("").empty());
  EXPECT_EQ(BuildSuffixArray("x"), std::vector<int32_t>{0});
}

TEST(SuffixArrayTest, Banana) {
  // banana: suffixes sorted = a(5), ana(3), anana(1), banana(0), na(4), nana(2)
  const std::vector<int32_t> expected = {5, 3, 1, 0, 4, 2};
  EXPECT_EQ(BuildSuffixArray("banana"), expected);
}

TEST(SuffixArrayTest, PaperDictionaryExample) {
  // Table 1 of the paper: d = cabbaabba. Sorted suffixes are
  // a, aabba, abba, abbaabba, ba, baabba, bba, bbaabba, cabbaabba,
  // i.e. 1-based start positions 9 5 6 2 8 4 7 3 1 (the paper's printed
  // "SA" row is the inverse permutation — rank by text position).
  const std::vector<int32_t> expected = {8, 4, 5, 1, 7, 3, 6, 2, 0};
  EXPECT_EQ(BuildSuffixArray("cabbaabba"), expected);
}

TEST(SuffixArrayTest, AllEqualCharacters) {
  const std::string s(500, 'z');
  const auto sa = BuildSuffixArray(s);
  ASSERT_TRUE(IsValidSuffixArray(s, sa));
  // Shortest suffix first.
  EXPECT_EQ(sa.front(), 499);
  EXPECT_EQ(sa.back(), 0);
}

TEST(SuffixArrayTest, ContainsNulBytes) {
  std::string s = "ab";
  s.push_back('\0');
  s += "ab";
  s.push_back('\0');
  s += "c";
  const auto sa = BuildSuffixArray(s);
  EXPECT_TRUE(IsValidSuffixArray(s, sa));
}

TEST(SuffixArrayTest, FullByteAlphabet) {
  Rng rng(99);
  std::string s(2000, '\0');
  for (auto& c : s) c = static_cast<char>(rng.Uniform(256));
  const auto sa = BuildSuffixArray(s);
  EXPECT_TRUE(IsValidSuffixArray(s, sa));
}

struct SaCase {
  const char* name;
  size_t len;
  int alphabet;
};

class SuffixArrayMatchesNaiveTest : public ::testing::TestWithParam<SaCase> {};

TEST_P(SuffixArrayMatchesNaiveTest, MatchesNaive) {
  const SaCase& c = GetParam();
  Rng rng(static_cast<uint64_t>(c.len * 31 + c.alphabet));
  for (int iter = 0; iter < 8; ++iter) {
    const std::string s = RandomString(rng, c.len, c.alphabet);
    EXPECT_EQ(BuildSuffixArray(s), BuildSuffixArrayNaive(s))
        << "case " << c.name << " iter " << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SuffixArrayMatchesNaiveTest,
    ::testing::Values(SaCase{"tiny_binary", 10, 2},
                      SaCase{"small_binary", 100, 2},
                      SaCase{"small_dna", 200, 4},
                      SaCase{"medium_english", 1000, 26},
                      SaCase{"repetitive", 800, 3},
                      SaCase{"large_binary", 3000, 2}),
    [](const auto& info) { return info.param.name; });

TEST(SuffixArrayTest, PeriodicStrings) {
  for (const char* pat : {"ab", "abc", "aab", "abab"}) {
    std::string s;
    while (s.size() < 400) s += pat;
    const auto sa = BuildSuffixArray(s);
    EXPECT_TRUE(IsValidSuffixArray(s, sa)) << pat;
  }
}

TEST(MatcherTest, PaperRefineExample) {
  // Table 1, step by step: searching x = bbaancabb in d = cabbaabba.
  // Paper bounds are 1-based; ours are 0-based (subtract 1).
  const std::string d = "cabbaabba";
  SuffixMatcher matcher(d);
  int32_t lb = 0;
  int32_t rb = 8;
  ASSERT_TRUE(matcher.Refine(&lb, &rb, 0, 'b'));
  EXPECT_EQ(lb, 4);  // paper: 5
  EXPECT_EQ(rb, 7);  // paper: 8
  ASSERT_TRUE(matcher.Refine(&lb, &rb, 1, 'b'));
  EXPECT_EQ(lb, 6);  // paper: 7
  EXPECT_EQ(rb, 7);  // paper: 8
  // Both "bba" and "bbaabba" match prefix "bba" (the paper's trace narrows
  // to a single suffix here already; the interval semantics keep both).
  ASSERT_TRUE(matcher.Refine(&lb, &rb, 2, 'a'));
  EXPECT_EQ(lb, 6);
  EXPECT_EQ(rb, 7);
  // Fourth character: suffix "bba" is exhausted, only "bbaabba" survives —
  // the paper's (8, 8), 0-based (7, 7).
  ASSERT_TRUE(matcher.Refine(&lb, &rb, 3, 'a'));
  EXPECT_EQ(lb, 7);
  EXPECT_EQ(rb, 7);
  // Fifth character 'n' does not occur: refinement fails.
  int32_t lb2 = lb;
  int32_t rb2 = rb;
  EXPECT_FALSE(matcher.Refine(&lb2, &rb2, 4, 'n'));
  // The surviving suffix is d[3..] = "baabba"... SA[7] = 2 (paper SA[8]=3).
  EXPECT_EQ(matcher.sa()[lb], 2);
}

TEST(MatcherTest, PaperLongestMatches) {
  const std::string d = "cabbaabba";
  SuffixMatcher matcher(d);
  // First factor of x = bbaancabb: "bbaa" at paper offset 3 (0-based 2).
  Match m = matcher.LongestMatch("bbaancabb");
  EXPECT_EQ(m.len, 4);
  EXPECT_EQ(d.substr(m.pos, m.len), "bbaa");
  // 'n' does not occur at all.
  m = matcher.LongestMatch("ncabb");
  EXPECT_EQ(m.len, 0);
  // Final factor "cabb" at paper offset 1 (0-based 0).
  m = matcher.LongestMatch("cabb");
  EXPECT_EQ(m.len, 4);
  EXPECT_EQ(m.pos, 0);
}

Match NaiveLongestMatch(std::string_view text, std::string_view pattern) {
  Match best;
  for (size_t start = 0; start < text.size(); ++start) {
    size_t l = 0;
    while (l < pattern.size() && start + l < text.size() &&
           text[start + l] == pattern[l]) {
      ++l;
    }
    if (static_cast<int32_t>(l) > best.len) {
      best.len = static_cast<int32_t>(l);
      best.pos = static_cast<int32_t>(start);
    }
  }
  return best;
}

class MatcherPropertyTest : public ::testing::TestWithParam<bool> {};

TEST_P(MatcherPropertyTest, LongestMatchMatchesNaive) {
  const bool jump_table = GetParam();
  Rng rng(4242);
  for (int iter = 0; iter < 30; ++iter) {
    const std::string text = RandomString(rng, 300, 3);
    SuffixMatcher matcher(text, {}, jump_table);
    for (int q = 0; q < 40; ++q) {
      std::string pattern = RandomString(rng, 1 + rng.Uniform(20), 3);
      // Half the queries are substrings of the text (guaranteed matches).
      if (q % 2 == 0 && text.size() > 10) {
        const size_t start = rng.Uniform(text.size() - 5);
        pattern = text.substr(start, 1 + rng.Uniform(10));
      }
      const Match got = matcher.LongestMatch(pattern);
      const Match want = NaiveLongestMatch(text, pattern);
      ASSERT_EQ(got.len, want.len) << "pattern " << pattern;
      if (got.len > 0) {
        // Any position with the same match length is acceptable.
        EXPECT_EQ(text.substr(got.pos, got.len), pattern.substr(0, got.len));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(JumpTable, MatcherPropertyTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "WithJumpTable" : "PureBinarySearch";
                         });

TEST(MatcherTest, MatchAcrossFullText) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  SuffixMatcher matcher(text);
  const Match m = matcher.LongestMatch(text);
  EXPECT_EQ(m.len, static_cast<int32_t>(text.size()));
  EXPECT_EQ(m.pos, 0);
}

TEST(MatcherTest, EmptyPattern) {
  SuffixMatcher matcher("abc");
  const Match m = matcher.LongestMatch("");
  EXPECT_EQ(m.len, 0);
}

TEST(MatcherTest, SingleCharText) {
  SuffixMatcher matcher("a");
  EXPECT_EQ(matcher.LongestMatch("aaa").len, 1);
  EXPECT_EQ(matcher.LongestMatch("b").len, 0);
}

}  // namespace
}  // namespace rlz
