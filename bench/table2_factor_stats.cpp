// Reproduces Table 2: average factor length and unused dictionary
// percentage for varied dictionary and sample sizes on the GOV2-like
// corpus.

#include "bench_common.h"

int main() {
  rlz::bench::RunFactorStatsTable(
      "Table 2: RLZ factor statistics on gov2s (GOV2 stand-in)",
      rlz::bench::Gov2Crawl());
  return 0;
}
