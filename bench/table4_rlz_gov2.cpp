// Reproduces Table 4: RLZ compression and retrieval speed on the GOV2-like
// corpus in natural crawl order, for every dictionary size x pos-len
// coding combination.

#include "bench_common.h"

int main() {
  rlz::bench::RunRlzTable(
      "Table 4: RLZ retrieval on gov2s, crawl order (GOV2 stand-in)",
      rlz::bench::Gov2Crawl());
  return 0;
}
