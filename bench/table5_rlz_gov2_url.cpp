// Reproduces Table 5: RLZ compression and retrieval speed on the GOV2-like
// corpus sorted by URL. Compression should match Table 4 within a fraction
// of a percent; sequential decoding gains cache locality.

#include "bench_common.h"

int main() {
  rlz::bench::RunRlzTable(
      "Table 5: RLZ retrieval on gov2s, URL-sorted (GOV2 stand-in)",
      rlz::bench::Gov2Url());
  return 0;
}
