// Reproduces Table 8: RLZ compression and retrieval speed on the
// Wikipedia-like corpus.

#include "bench_common.h"

int main() {
  rlz::bench::RunRlzTable(
      "Table 8: RLZ retrieval on wikis (Wikipedia stand-in)",
      rlz::bench::WikiCrawl());
  return 0;
}
