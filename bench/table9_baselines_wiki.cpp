// Reproduces Table 9: ASCII and blocked gzipx/lzmax baselines on the
// Wikipedia-like corpus.

#include "bench_common.h"

int main() {
  rlz::bench::RunBaselineTable(
      "Table 9: baselines on wikis (Wikipedia stand-in)",
      rlz::bench::WikiCrawl());
  return 0;
}
