// Closed-loop serving load bench (DESIGN.md §10): N producer threads, each
// keeping K requests in flight through DocService::SubmitBatch over a
// 4-shard ShardedStore (rlz-ZV, cache off, so every request decodes), under
// uniform and Zipfian(theta=0.99) document popularity. Reports wall-clock
// and modeled docs/s plus p50/p99/p999 request latency per row, and writes
// machine-readable JSON (default BENCH_serve.json).
//
// Two throughput columns, same doctrine as serve_throughput and DESIGN.md
// §4/§6: "wall" is real elapsed time on this host — meaningful only when
// the host has a core per worker; "modeled" is requests divided by the
// busiest worker's CPU + simulated-disk time (the makespan of a machine
// with one core and one spindle per worker), which is the
// machine-independent column. The scaling gate therefore picks its basis
// from the host: wall when std::thread::hardware_concurrency() >= 4 (the
// 4-worker row can actually run 4-wide, as on the 4-vCPU CI runners),
// modeled otherwise (e.g. single-core hosts, where wall scaling is
// physically impossible); the JSON records which basis gated.
//
// Ingest mode (--ingest) measures the live-corpus story instead
// (DESIGN.md §11): Zipfian readers through DocService while a writer
// thread Appends fresh documents into the store's open tail (sealing into
// new shards as it crosses the seal threshold). The row pair is read-only
// vs mixed; the gate asserts that sustained ingest costs at most 30% of
// read throughput (read docs/s under ingest >= kMinReadRetention x the
// read-only baseline, best of kGateRepeats). Writes BENCH_ingest.json.
//
//   ./build/bench/serve_load_bench              full run
//   ./build/bench/serve_load_bench --smoke      small corpus + gate:
//         4-worker docs/s must be >= kMinScaleRatio x 1-worker docs/s on
//         the uniform rows (best of kGateRepeats measurements each), else
//         exit 1 (run by the perf-smoke CI job)
//   ./build/bench/serve_load_bench --ingest     mixed read/append mode
//         (with --smoke: small corpus + the read-retention gate; default
//         output BENCH_ingest.json)
//   ./build/bench/serve_load_bench --ingest-fraction F   appends per read
//         request issued in mixed mode (default 0.10)
//   ./build/bench/serve_load_bench --out FILE   JSON destination
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generator.h"
#include "io/file.h"
#include "serve/doc_service.h"
#include "serve/sharded_store.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace rlz {
namespace bench {
namespace {

// The perf-smoke CI gate: 4 workers must beat 1 worker by this factor on
// docs/s (uniform skew), on the basis chosen for the host (see header).
constexpr double kMinScaleRatio = 2.5;
// Gated rows are measured this many times; the best run gates (absorbs
// scheduler noise on shared CI runners).
constexpr int kGateRepeats = 2;
// In-flight window per producer (the K of the closed loop).
constexpr size_t kInFlight = 64;
constexpr double kZipfTheta = 0.99;
// Ingest-mode gate: read docs/s under mixed read/append load must retain
// at least this fraction of the read-only baseline (same basis rules).
constexpr double kMinReadRetention = 0.70;

struct LoadResult {
  double wall_dps = 0.0;
  double modeled_dps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  uint64_t steals = 0;
  uint64_t requests = 0;
};

// One closed-loop run: `producers` threads, each submitting kInFlight-id
// batches and waiting for completion, until `total_rounds` batches have
// been issued service-wide. Document ids are uniform or Zipfian(theta)
// ranks over the collection, drawn from per-producer generators.
LoadResult RunLoad(const Archive& archive, int workers, int producers,
                   bool zipfian, size_t total_rounds) {
  DocServiceOptions options;
  options.num_threads = workers;
  options.cache_bytes = 0;  // every request decodes
  LoadResult result;
  const size_t ndocs = archive.num_docs();
  const ZipfSampler zipf(ndocs, kZipfTheta);
  {
    DocService service(&archive, options);
    std::atomic<size_t> rounds{0};
    Timer wall;
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        Rng rng(0x5eed5eed + 977 * static_cast<uint64_t>(p));
        std::vector<size_t> ids(kInFlight);
        ServeBatch batch;
        while (rounds.fetch_add(1) < total_rounds) {
          for (size_t i = 0; i < kInFlight; ++i) {
            ids[i] = zipfian ? zipf.Sample(rng)
                             : static_cast<size_t>(rng.Uniform(ndocs));
          }
          service.SubmitBatch(ids, &batch);
          for (const GetResult& r : batch.Wait()) {
            RLZ_CHECK(r.ok()) << r.status.ToString();
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    service.Drain();
    const double wall_seconds = wall.ElapsedSeconds();
    const ServiceStats stats = service.Stats();
    result.requests = stats.requests;
    result.wall_dps = stats.requests / wall_seconds;
    result.modeled_dps = stats.critical_path_seconds > 0
                             ? stats.requests / stats.critical_path_seconds
                             : 0.0;
    result.p50_us = stats.latency_p50_us;
    result.p99_us = stats.latency_p99_us;
    result.p999_us = stats.latency_p999_us;
    result.steals = stats.steals;
  }
  return result;
}

// What the ingest writer accomplished during one mixed run.
struct IngestStats {
  uint64_t docs = 0;
  uint64_t bytes = 0;
  double mb_per_s = 0.0;
};

// One mixed read/append run: `producers` reader threads drive the same
// closed Zipfian loop as RunLoad over the store's *initial* `read_docs`
// documents, while a single writer thread Appends documents from `fresh`
// into the open tail, paced so the store has absorbed ~`fraction` appends
// per completed read request (the configurable ingest fraction). The
// writer cycles through `fresh` if readers outlast it, and stops when the
// readers finish. Read throughput/latency land in the returned
// LoadResult; writer volume and MB/s land in `ingest`.
LoadResult RunMixed(ShardedStore* store, int workers, int producers,
                    size_t read_docs, size_t total_rounds,
                    const Collection& fresh, double fraction,
                    IngestStats* ingest) {
  DocServiceOptions options;
  options.num_threads = workers;
  options.cache_bytes = 0;  // every request decodes
  LoadResult result;
  const ZipfSampler zipf(read_docs, kZipfTheta);
  {
    DocService service(store, options);
    std::atomic<size_t> rounds{0};
    std::atomic<size_t> rounds_done{0};
    std::atomic<bool> readers_done{false};
    Timer wall;
    std::thread writer([&] {
      Timer ingest_wall;
      size_t next = 0;
      uint64_t appended = 0;
      uint64_t bytes = 0;
      while (!readers_done.load(std::memory_order_acquire)) {
        const uint64_t budget = static_cast<uint64_t>(
            fraction *
            static_cast<double>(
                rounds_done.load(std::memory_order_relaxed) * kInFlight));
        if (appended >= budget) {
          std::this_thread::yield();
          continue;
        }
        const std::string_view doc = fresh.doc(next);
        next = (next + 1) % fresh.num_docs();
        const auto id = store->Append(doc);
        RLZ_CHECK(id.ok()) << id.status().ToString();
        ++appended;
        bytes += doc.size();
      }
      const double seconds = ingest_wall.ElapsedSeconds();
      ingest->docs = appended;
      ingest->bytes = bytes;
      ingest->mb_per_s =
          seconds > 0 ? bytes / (1048576.0 * seconds) : 0.0;
    });
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        Rng rng(0x1275e5ed + 977 * static_cast<uint64_t>(p));
        std::vector<size_t> ids(kInFlight);
        ServeBatch batch;
        while (rounds.fetch_add(1) < total_rounds) {
          for (size_t i = 0; i < kInFlight; ++i) ids[i] = zipf.Sample(rng);
          service.SubmitBatch(ids, &batch);
          for (const GetResult& r : batch.Wait()) {
            RLZ_CHECK(r.ok()) << r.status.ToString();
          }
          rounds_done.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    readers_done.store(true, std::memory_order_release);
    writer.join();
    service.Drain();
    const double wall_seconds = wall.ElapsedSeconds();
    const ServiceStats stats = service.Stats();
    result.requests = stats.requests;
    result.wall_dps = stats.requests / wall_seconds;
    result.modeled_dps = stats.critical_path_seconds > 0
                             ? stats.requests / stats.critical_path_seconds
                             : 0.0;
    result.p50_us = stats.latency_p50_us;
    result.p99_us = stats.latency_p99_us;
    result.p999_us = stats.latency_p999_us;
    result.steals = stats.steals;
  }
  return result;
}

void AppendJsonRow(int workers, int producers, const char* skew,
                   const LoadResult& r, bool last, std::string* json) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"workers\": %d, \"producers\": %d, \"skew\": \"%s\", "
      "\"requests\": %llu, \"wall_dps\": %.0f, \"modeled_dps\": %.0f, "
      "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, "
      "\"steals\": %llu}%s\n",
      workers, producers, skew,
      static_cast<unsigned long long>(r.requests), r.wall_dps, r.modeled_dps,
      r.p50_us, r.p99_us, r.p999_us,
      static_cast<unsigned long long>(r.steals), last ? "" : ",");
  json->append(buf);
}

void PrintRow(int workers, int producers, const char* skew,
              const LoadResult& r) {
  std::printf("%-8d %-10d %-8s %12.0f %14.0f %9.1f %9.1f %9.1f %8llu\n",
              workers, producers, skew, r.wall_dps, r.modeled_dps, r.p50_us,
              r.p99_us, r.p999_us,
              static_cast<unsigned long long>(r.steals));
}

void Run(bool smoke, const std::string& out_path) {
  CorpusOptions corpus_options;
  corpus_options.target_bytes = smoke ? (4u << 20) : (16u << 20);
  corpus_options.seed = 20110613;
  const Corpus corpus = GenerateCorpus(corpus_options);
  const Collection& collection = corpus.collection;

  ShardedStoreOptions store_options;
  store_options.num_shards = 4;
  store_options.dict_bytes = collection.size_bytes() / 100;
  const auto store = ShardedStore::Build(collection, store_options);

  const unsigned hw = std::thread::hardware_concurrency();
  const bool wall_basis = hw >= 4;
  const size_t total_requests = smoke ? 16000 : 64000;
  const size_t total_rounds = total_requests / kInFlight;

  std::printf("serve_load_bench (%s): %zu docs, %.1f MB, %s, hw=%u\n",
              smoke ? "smoke" : "full", collection.num_docs(),
              collection.size_bytes() / (1024.0 * 1024.0),
              store->name().c_str(), hw);
  std::printf("%-8s %-10s %-8s %12s %14s %9s %9s %9s %8s\n", "workers",
              "producers", "skew", "wall dps", "modeled dps", "p50 us",
              "p99 us", "p999 us", "steals");

  std::string json;
  char buf[512];
  json.append("{\n  \"bench\": \"serve_load\",\n");
  json.append(smoke ? "  \"mode\": \"smoke\",\n" : "  \"mode\": \"full\",\n");
  std::snprintf(buf, sizeof(buf),
                "  \"corpus\": {\"docs\": %zu, \"bytes\": %llu, "
                "\"seed\": %llu},\n",
                collection.num_docs(),
                static_cast<unsigned long long>(collection.size_bytes()),
                static_cast<unsigned long long>(corpus_options.seed));
  json.append(buf);
  std::snprintf(buf, sizeof(buf),
                "  \"store\": \"%s\",\n  \"host\": "
                "{\"hardware_concurrency\": %u},\n",
                store->name().c_str(), hw);
  json.append(buf);
  std::snprintf(buf, sizeof(buf),
                "  \"config\": {\"in_flight_per_producer\": %zu, "
                "\"zipf_theta\": %.2f, \"requests_per_row\": %zu},\n",
                kInFlight, kZipfTheta, total_rounds * kInFlight);
  json.append(buf);
  // The one-time "before" record: the pre-PR DocService (single
  // mutex/deque funnel, promise-per-request) measured from a pristine
  // build of commit 6be0460 via hot_path_bench's serve rows (rlz-ZV,
  // cache off, 20k MultiGet requests) on the 1-core reference host.
  // Emitted as constants so regenerating this file cannot lose the
  // trajectory's origin.
  json.append(
      "  \"pre_pr_baseline\": {\n"
      "    \"comment\": \"Pre-PR funnel DocService measured once at commit "
      "6be0460 on the 1-core reference host (hot_path_bench serve rows: "
      "rlz-ZV, cache off). Wall scaling 1->4 threads was 1.02x through the "
      "single-queue funnel.\",\n"
      "    \"threads_1\": {\"wall_dps\": 24098, \"modeled_dps\": 14394},\n"
      "    \"threads_4\": {\"wall_dps\": 24513, \"modeled_dps\": 41891}\n"
      "  },\n");
  json.append("  \"rows\": [\n");

  // The gated pair: uniform skew, 4 producers, 1 worker vs 4 workers;
  // best of kGateRepeats runs each.
  LoadResult one;
  LoadResult four;
  for (int rep = 0; rep < (smoke ? kGateRepeats : 1); ++rep) {
    const LoadResult r1 = RunLoad(*store, 1, 4, /*zipfian=*/false,
                                  total_rounds);
    const LoadResult r4 = RunLoad(*store, 4, 4, /*zipfian=*/false,
                                  total_rounds);
    const double basis1 = wall_basis ? r1.wall_dps : r1.modeled_dps;
    const double basis4 = wall_basis ? r4.wall_dps : r4.modeled_dps;
    if (rep == 0 || basis1 > (wall_basis ? one.wall_dps : one.modeled_dps)) {
      one = r1;
    }
    if (rep == 0 || basis4 > (wall_basis ? four.wall_dps : four.modeled_dps)) {
      four = r4;
    }
  }
  PrintRow(1, 4, "uniform", one);
  AppendJsonRow(1, 4, "uniform", one, /*last=*/false, &json);
  PrintRow(4, 4, "uniform", four);
  AppendJsonRow(4, 4, "uniform", four, /*last=*/false, &json);

  // Ungated context rows: producer scaling and Zipfian skew (where the
  // router concentrates hot documents on few workers and stealing levels
  // the load).
  const struct {
    int workers;
    int producers;
    bool zipfian;
  } extra_rows[] = {
      {4, 1, false}, {1, 4, true}, {4, 4, true}};
  constexpr size_t kNumExtra = sizeof(extra_rows) / sizeof(extra_rows[0]);
  for (size_t i = 0; i < kNumExtra; ++i) {
    const auto& row = extra_rows[i];
    const LoadResult r = RunLoad(*store, row.workers, row.producers,
                                 row.zipfian, total_rounds);
    const char* skew = row.zipfian ? "zipfian" : "uniform";
    PrintRow(row.workers, row.producers, skew, r);
    AppendJsonRow(row.workers, row.producers, skew, r,
                  /*last=*/i + 1 == kNumExtra, &json);
  }
  json.append("  ],\n");

  const double dps1 = wall_basis ? one.wall_dps : one.modeled_dps;
  const double dps4 = wall_basis ? four.wall_dps : four.modeled_dps;
  const double ratio = dps1 > 0 ? dps4 / dps1 : 0.0;
  const bool gate_pass = ratio >= kMinScaleRatio;
  std::snprintf(buf, sizeof(buf),
                "  \"gate\": {\"basis\": \"%s\", "
                "\"min_ratio_required\": %.2f, \"workers_1_dps\": %.0f, "
                "\"workers_4_dps\": %.0f, \"ratio\": %.2f, \"pass\": %s}\n"
                "}\n",
                wall_basis ? "wall" : "modeled", kMinScaleRatio, dps1, dps4,
                ratio, gate_pass ? "true" : "false");
  json.append(buf);

  const Status write_status = WriteFile(out_path, json);
  RLZ_CHECK(write_status.ok()) << write_status.ToString();
  std::printf("\nwrote %s\n", out_path.c_str());

  if (smoke) {
    std::printf("smoke gate (%s basis): 4 workers >= %.2fx 1 worker: %s "
                "(%.2fx)\n",
                wall_basis ? "wall" : "modeled", kMinScaleRatio,
                gate_pass ? "PASS" : "FAIL", ratio);
    if (!gate_pass) std::exit(1);
  }
}

// Like AppendJsonRow but with a row label ("read_only" / "mixed") instead
// of a worker/producer/skew triple — the ingest-mode rows share every
// other knob, so the label is the only thing that varies.
void AppendLabeledJsonRow(const char* label, const LoadResult& r, bool last,
                          std::string* json) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"row\": \"%s\", \"requests\": %llu, \"wall_dps\": %.0f, "
      "\"modeled_dps\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
      "\"p999_us\": %.1f, \"steals\": %llu}%s\n",
      label, static_cast<unsigned long long>(r.requests), r.wall_dps,
      r.modeled_dps, r.p50_us, r.p99_us, r.p999_us,
      static_cast<unsigned long long>(r.steals), last ? "" : ",");
  json->append(buf);
}

// The --ingest mode: sustained ingest vs serving (DESIGN.md §11,
// EXPERIMENTS.md). Builds a *live* 4-shard store, measures a read-only
// Zipfian baseline (4 workers, 4 producers), then the same read load with
// a writer appending `fraction` documents per read request from a
// fresh-content corpus (different seed — the §3.6 drift setting), tail
// auto-sealing as it fills. Both rows are best-of-kGateRepeats in smoke
// mode. The gate: mixed-row read docs/s must retain kMinReadRetention of
// the read-only row on the host-chosen basis.
void RunIngest(bool smoke, const std::string& out_path, double fraction) {
  CorpusOptions corpus_options;
  corpus_options.target_bytes = smoke ? (4u << 20) : (16u << 20);
  corpus_options.seed = 20110613;
  const Corpus corpus = GenerateCorpus(corpus_options);
  const Collection& collection = corpus.collection;

  ShardedStoreOptions store_options;
  store_options.num_shards = 4;
  store_options.dict_bytes = collection.size_bytes() / 100;
  store_options.live.tail_seal_bytes = 1 << 20;
  auto store = ShardedStore::Build(collection, store_options);

  // Fresh content the writer streams in (drifted seed: appended documents
  // encode against the build-time append dictionary, as in §3.6).
  CorpusOptions fresh_options;
  fresh_options.target_bytes = smoke ? (2u << 20) : (8u << 20);
  fresh_options.seed = 40227;
  const Collection fresh = GenerateCorpus(fresh_options).collection;

  const unsigned hw = std::thread::hardware_concurrency();
  const bool wall_basis = hw >= 4;
  const size_t read_docs = collection.num_docs();
  const size_t total_requests = smoke ? 16000 : 64000;
  const size_t total_rounds = total_requests / kInFlight;
  const int shards_before = store->num_shards();

  std::printf(
      "serve_load_bench --ingest (%s): %zu docs, %.1f MB, %s, hw=%u, "
      "ingest fraction %.2f\n",
      smoke ? "smoke" : "full", collection.num_docs(),
      collection.size_bytes() / (1024.0 * 1024.0), store->name().c_str(), hw,
      fraction);
  std::printf("%-10s %12s %14s %9s %9s %9s %8s\n", "row", "wall dps",
              "modeled dps", "p50 us", "p99 us", "p999 us", "steals");

  // Read-only baseline first (repeats before any append mutates the
  // store, so every baseline run reads the same frozen corpus).
  LoadResult read_only;
  for (int rep = 0; rep < (smoke ? kGateRepeats : 1); ++rep) {
    const LoadResult r =
        RunLoad(*store, 4, 4, /*zipfian=*/true, total_rounds);
    const double basis = wall_basis ? r.wall_dps : r.modeled_dps;
    if (rep == 0 ||
        basis > (wall_basis ? read_only.wall_dps : read_only.modeled_dps)) {
      read_only = r;
    }
  }
  PrintRow(4, 4, "zipfian", read_only);

  // Mixed rows: the store keeps growing across repeats (appends are
  // permanent), but readers always sample the initial `read_docs` range,
  // so the read workload stays identical.
  LoadResult mixed;
  IngestStats ingest;
  for (int rep = 0; rep < (smoke ? kGateRepeats : 1); ++rep) {
    IngestStats stats;
    const LoadResult r = RunMixed(store.get(), 4, 4, read_docs, total_rounds,
                                  fresh, fraction, &stats);
    const double basis = wall_basis ? r.wall_dps : r.modeled_dps;
    if (rep == 0 ||
        basis > (wall_basis ? mixed.wall_dps : mixed.modeled_dps)) {
      mixed = r;
      ingest = stats;
    }
  }
  PrintRow(4, 4, "zipfian", mixed);
  std::printf(
      "ingest: %llu docs, %.1f MB appended at %.1f MB/s; shards %d -> %d, "
      "epoch %llu\n",
      static_cast<unsigned long long>(ingest.docs),
      ingest.bytes / 1048576.0, ingest.mb_per_s, shards_before,
      store->num_shards(),
      static_cast<unsigned long long>(store->epoch_sequence()));

  std::string json;
  char buf[512];
  json.append("{\n  \"bench\": \"serve_ingest\",\n");
  json.append(smoke ? "  \"mode\": \"smoke\",\n" : "  \"mode\": \"full\",\n");
  std::snprintf(buf, sizeof(buf),
                "  \"corpus\": {\"docs\": %zu, \"bytes\": %llu, "
                "\"seed\": %llu},\n",
                collection.num_docs(),
                static_cast<unsigned long long>(collection.size_bytes()),
                static_cast<unsigned long long>(corpus_options.seed));
  json.append(buf);
  std::snprintf(buf, sizeof(buf),
                "  \"store\": \"%s\",\n  \"host\": "
                "{\"hardware_concurrency\": %u},\n",
                store->name().c_str(), hw);
  json.append(buf);
  std::snprintf(
      buf, sizeof(buf),
      "  \"config\": {\"in_flight_per_producer\": %zu, "
      "\"zipf_theta\": %.2f, \"requests_per_row\": %zu, "
      "\"ingest_fraction\": %.2f, \"tail_seal_bytes\": %llu, "
      "\"fresh_seed\": %llu},\n",
      kInFlight, kZipfTheta, total_rounds * kInFlight, fraction,
      static_cast<unsigned long long>(store_options.live.tail_seal_bytes),
      static_cast<unsigned long long>(fresh_options.seed));
  json.append(buf);
  json.append("  \"rows\": [\n");
  AppendLabeledJsonRow("read_only", read_only, /*last=*/false, &json);
  AppendLabeledJsonRow("mixed", mixed, /*last=*/true, &json);
  json.append("  ],\n");
  std::snprintf(
      buf, sizeof(buf),
      "  \"ingest\": {\"docs\": %llu, \"bytes\": %llu, "
      "\"mb_per_s\": %.1f, \"shards_before\": %d, \"shards_after\": %d, "
      "\"final_epoch\": %llu},\n",
      static_cast<unsigned long long>(ingest.docs),
      static_cast<unsigned long long>(ingest.bytes), ingest.mb_per_s,
      shards_before, store->num_shards(),
      static_cast<unsigned long long>(store->epoch_sequence()));
  json.append(buf);

  const double dps_ro = wall_basis ? read_only.wall_dps : read_only.modeled_dps;
  const double dps_mx = wall_basis ? mixed.wall_dps : mixed.modeled_dps;
  const double retention = dps_ro > 0 ? dps_mx / dps_ro : 0.0;
  const bool gate_pass = retention >= kMinReadRetention;
  std::snprintf(
      buf, sizeof(buf),
      "  \"gate\": {\"basis\": \"%s\", \"min_read_retention\": %.2f, "
      "\"read_only_dps\": %.0f, \"mixed_dps\": %.0f, \"retention\": %.2f, "
      "\"pass\": %s}\n}\n",
      wall_basis ? "wall" : "modeled", kMinReadRetention, dps_ro, dps_mx,
      retention, gate_pass ? "true" : "false");
  json.append(buf);

  const Status write_status = WriteFile(out_path, json);
  RLZ_CHECK(write_status.ok()) << write_status.ToString();
  std::printf("\nwrote %s\n", out_path.c_str());

  if (smoke) {
    std::printf(
        "smoke gate (%s basis): mixed reads >= %.0f%% of read-only: %s "
        "(%.0f%%)\n",
        wall_basis ? "wall" : "modeled", 100.0 * kMinReadRetention,
        gate_pass ? "PASS" : "FAIL", 100.0 * retention);
    if (!gate_pass) std::exit(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace rlz

int main(int argc, char** argv) {
  bool smoke = false;
  bool ingest = false;
  double ingest_fraction = 0.10;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--ingest") == 0) {
      ingest = true;
    } else if (std::strcmp(argv[i], "--ingest-fraction") == 0 &&
               i + 1 < argc) {
      ingest_fraction = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--ingest] [--ingest-fraction F] "
                   "[--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (out_path.empty()) {
    out_path = ingest ? "BENCH_ingest.json" : "BENCH_serve.json";
  }
  if (ingest) {
    rlz::bench::RunIngest(smoke, out_path, ingest_fraction);
  } else {
    rlz::bench::Run(smoke, out_path);
  }
  return 0;
}
