// Closed-loop serving load bench (DESIGN.md §10): N producer threads, each
// keeping K requests in flight through DocService::SubmitBatch over a
// 4-shard ShardedStore (rlz-ZV, cache off, so every request decodes), under
// uniform and Zipfian(theta=0.99) document popularity. Reports wall-clock
// and modeled docs/s plus p50/p99/p999 request latency per row, and writes
// machine-readable JSON (default BENCH_serve.json).
//
// Two throughput columns, same doctrine as serve_throughput and DESIGN.md
// §4/§6: "wall" is real elapsed time on this host — meaningful only when
// the host has a core per worker; "modeled" is requests divided by the
// busiest worker's CPU + simulated-disk time (the makespan of a machine
// with one core and one spindle per worker), which is the
// machine-independent column. The scaling gate therefore picks its basis
// from the host: wall when std::thread::hardware_concurrency() >= 4 (the
// 4-worker row can actually run 4-wide, as on the 4-vCPU CI runners),
// modeled otherwise (e.g. single-core hosts, where wall scaling is
// physically impossible); the JSON records which basis gated.
//
//   ./build/bench/serve_load_bench              full run
//   ./build/bench/serve_load_bench --smoke      small corpus + gate:
//         4-worker docs/s must be >= kMinScaleRatio x 1-worker docs/s on
//         the uniform rows (best of kGateRepeats measurements each), else
//         exit 1 (run by the perf-smoke CI job)
//   ./build/bench/serve_load_bench --out FILE   JSON destination
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generator.h"
#include "io/file.h"
#include "serve/doc_service.h"
#include "serve/sharded_store.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace rlz {
namespace bench {
namespace {

// The perf-smoke CI gate: 4 workers must beat 1 worker by this factor on
// docs/s (uniform skew), on the basis chosen for the host (see header).
constexpr double kMinScaleRatio = 2.5;
// Gated rows are measured this many times; the best run gates (absorbs
// scheduler noise on shared CI runners).
constexpr int kGateRepeats = 2;
// In-flight window per producer (the K of the closed loop).
constexpr size_t kInFlight = 64;
constexpr double kZipfTheta = 0.99;

struct LoadResult {
  double wall_dps = 0.0;
  double modeled_dps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  uint64_t steals = 0;
  uint64_t requests = 0;
};

// One closed-loop run: `producers` threads, each submitting kInFlight-id
// batches and waiting for completion, until `total_rounds` batches have
// been issued service-wide. Document ids are uniform or Zipfian(theta)
// ranks over the collection, drawn from per-producer generators.
LoadResult RunLoad(const Archive& archive, int workers, int producers,
                   bool zipfian, size_t total_rounds) {
  DocServiceOptions options;
  options.num_threads = workers;
  options.cache_bytes = 0;  // every request decodes
  LoadResult result;
  const size_t ndocs = archive.num_docs();
  const ZipfSampler zipf(ndocs, kZipfTheta);
  {
    DocService service(&archive, options);
    std::atomic<size_t> rounds{0};
    Timer wall;
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        Rng rng(0x5eed5eed + 977 * static_cast<uint64_t>(p));
        std::vector<size_t> ids(kInFlight);
        ServeBatch batch;
        while (rounds.fetch_add(1) < total_rounds) {
          for (size_t i = 0; i < kInFlight; ++i) {
            ids[i] = zipfian ? zipf.Sample(rng)
                             : static_cast<size_t>(rng.Uniform(ndocs));
          }
          service.SubmitBatch(ids, &batch);
          for (const GetResult& r : batch.Wait()) {
            RLZ_CHECK(r.ok()) << r.status.ToString();
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    service.Drain();
    const double wall_seconds = wall.ElapsedSeconds();
    const ServiceStats stats = service.Stats();
    result.requests = stats.requests;
    result.wall_dps = stats.requests / wall_seconds;
    result.modeled_dps = stats.critical_path_seconds > 0
                             ? stats.requests / stats.critical_path_seconds
                             : 0.0;
    result.p50_us = stats.latency_p50_us;
    result.p99_us = stats.latency_p99_us;
    result.p999_us = stats.latency_p999_us;
    result.steals = stats.steals;
  }
  return result;
}

void AppendJsonRow(int workers, int producers, const char* skew,
                   const LoadResult& r, bool last, std::string* json) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"workers\": %d, \"producers\": %d, \"skew\": \"%s\", "
      "\"requests\": %llu, \"wall_dps\": %.0f, \"modeled_dps\": %.0f, "
      "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, "
      "\"steals\": %llu}%s\n",
      workers, producers, skew,
      static_cast<unsigned long long>(r.requests), r.wall_dps, r.modeled_dps,
      r.p50_us, r.p99_us, r.p999_us,
      static_cast<unsigned long long>(r.steals), last ? "" : ",");
  json->append(buf);
}

void PrintRow(int workers, int producers, const char* skew,
              const LoadResult& r) {
  std::printf("%-8d %-10d %-8s %12.0f %14.0f %9.1f %9.1f %9.1f %8llu\n",
              workers, producers, skew, r.wall_dps, r.modeled_dps, r.p50_us,
              r.p99_us, r.p999_us,
              static_cast<unsigned long long>(r.steals));
}

void Run(bool smoke, const std::string& out_path) {
  CorpusOptions corpus_options;
  corpus_options.target_bytes = smoke ? (4u << 20) : (16u << 20);
  corpus_options.seed = 20110613;
  const Corpus corpus = GenerateCorpus(corpus_options);
  const Collection& collection = corpus.collection;

  ShardedStoreOptions store_options;
  store_options.num_shards = 4;
  store_options.dict_bytes = collection.size_bytes() / 100;
  const auto store = ShardedStore::Build(collection, store_options);

  const unsigned hw = std::thread::hardware_concurrency();
  const bool wall_basis = hw >= 4;
  const size_t total_requests = smoke ? 16000 : 64000;
  const size_t total_rounds = total_requests / kInFlight;

  std::printf("serve_load_bench (%s): %zu docs, %.1f MB, %s, hw=%u\n",
              smoke ? "smoke" : "full", collection.num_docs(),
              collection.size_bytes() / (1024.0 * 1024.0),
              store->name().c_str(), hw);
  std::printf("%-8s %-10s %-8s %12s %14s %9s %9s %9s %8s\n", "workers",
              "producers", "skew", "wall dps", "modeled dps", "p50 us",
              "p99 us", "p999 us", "steals");

  std::string json;
  char buf[512];
  json.append("{\n  \"bench\": \"serve_load\",\n");
  json.append(smoke ? "  \"mode\": \"smoke\",\n" : "  \"mode\": \"full\",\n");
  std::snprintf(buf, sizeof(buf),
                "  \"corpus\": {\"docs\": %zu, \"bytes\": %llu, "
                "\"seed\": %llu},\n",
                collection.num_docs(),
                static_cast<unsigned long long>(collection.size_bytes()),
                static_cast<unsigned long long>(corpus_options.seed));
  json.append(buf);
  std::snprintf(buf, sizeof(buf),
                "  \"store\": \"%s\",\n  \"host\": "
                "{\"hardware_concurrency\": %u},\n",
                store->name().c_str(), hw);
  json.append(buf);
  std::snprintf(buf, sizeof(buf),
                "  \"config\": {\"in_flight_per_producer\": %zu, "
                "\"zipf_theta\": %.2f, \"requests_per_row\": %zu},\n",
                kInFlight, kZipfTheta, total_rounds * kInFlight);
  json.append(buf);
  // The one-time "before" record: the pre-PR DocService (single
  // mutex/deque funnel, promise-per-request) measured from a pristine
  // build of commit 6be0460 via hot_path_bench's serve rows (rlz-ZV,
  // cache off, 20k MultiGet requests) on the 1-core reference host.
  // Emitted as constants so regenerating this file cannot lose the
  // trajectory's origin.
  json.append(
      "  \"pre_pr_baseline\": {\n"
      "    \"comment\": \"Pre-PR funnel DocService measured once at commit "
      "6be0460 on the 1-core reference host (hot_path_bench serve rows: "
      "rlz-ZV, cache off). Wall scaling 1->4 threads was 1.02x through the "
      "single-queue funnel.\",\n"
      "    \"threads_1\": {\"wall_dps\": 24098, \"modeled_dps\": 14394},\n"
      "    \"threads_4\": {\"wall_dps\": 24513, \"modeled_dps\": 41891}\n"
      "  },\n");
  json.append("  \"rows\": [\n");

  // The gated pair: uniform skew, 4 producers, 1 worker vs 4 workers;
  // best of kGateRepeats runs each.
  LoadResult one;
  LoadResult four;
  for (int rep = 0; rep < (smoke ? kGateRepeats : 1); ++rep) {
    const LoadResult r1 = RunLoad(*store, 1, 4, /*zipfian=*/false,
                                  total_rounds);
    const LoadResult r4 = RunLoad(*store, 4, 4, /*zipfian=*/false,
                                  total_rounds);
    const double basis1 = wall_basis ? r1.wall_dps : r1.modeled_dps;
    const double basis4 = wall_basis ? r4.wall_dps : r4.modeled_dps;
    if (rep == 0 || basis1 > (wall_basis ? one.wall_dps : one.modeled_dps)) {
      one = r1;
    }
    if (rep == 0 || basis4 > (wall_basis ? four.wall_dps : four.modeled_dps)) {
      four = r4;
    }
  }
  PrintRow(1, 4, "uniform", one);
  AppendJsonRow(1, 4, "uniform", one, /*last=*/false, &json);
  PrintRow(4, 4, "uniform", four);
  AppendJsonRow(4, 4, "uniform", four, /*last=*/false, &json);

  // Ungated context rows: producer scaling and Zipfian skew (where the
  // router concentrates hot documents on few workers and stealing levels
  // the load).
  const struct {
    int workers;
    int producers;
    bool zipfian;
  } extra_rows[] = {
      {4, 1, false}, {1, 4, true}, {4, 4, true}};
  constexpr size_t kNumExtra = sizeof(extra_rows) / sizeof(extra_rows[0]);
  for (size_t i = 0; i < kNumExtra; ++i) {
    const auto& row = extra_rows[i];
    const LoadResult r = RunLoad(*store, row.workers, row.producers,
                                 row.zipfian, total_rounds);
    const char* skew = row.zipfian ? "zipfian" : "uniform";
    PrintRow(row.workers, row.producers, skew, r);
    AppendJsonRow(row.workers, row.producers, skew, r,
                  /*last=*/i + 1 == kNumExtra, &json);
  }
  json.append("  ],\n");

  const double dps1 = wall_basis ? one.wall_dps : one.modeled_dps;
  const double dps4 = wall_basis ? four.wall_dps : four.modeled_dps;
  const double ratio = dps1 > 0 ? dps4 / dps1 : 0.0;
  const bool gate_pass = ratio >= kMinScaleRatio;
  std::snprintf(buf, sizeof(buf),
                "  \"gate\": {\"basis\": \"%s\", "
                "\"min_ratio_required\": %.2f, \"workers_1_dps\": %.0f, "
                "\"workers_4_dps\": %.0f, \"ratio\": %.2f, \"pass\": %s}\n"
                "}\n",
                wall_basis ? "wall" : "modeled", kMinScaleRatio, dps1, dps4,
                ratio, gate_pass ? "true" : "false");
  json.append(buf);

  const Status write_status = WriteFile(out_path, json);
  RLZ_CHECK(write_status.ok()) << write_status.ToString();
  std::printf("\nwrote %s\n", out_path.c_str());

  if (smoke) {
    std::printf("smoke gate (%s basis): 4 workers >= %.2fx 1 worker: %s "
                "(%.2fx)\n",
                wall_basis ? "wall" : "modeled", kMinScaleRatio,
                gate_pass ? "PASS" : "FAIL", ratio);
    if (!gate_pass) std::exit(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace rlz

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }
  rlz::bench::Run(smoke, out_path);
  return 0;
}
