// Network serving load bench (DESIGN.md §13): N client connections, each
// keeping a pipeline of K requests in flight against one epoll DocServer
// over loopback TCP, sweeping connections x pipelining depth. The decode
// cache is large and warmed so rows measure the network front end
// (framing, event loop, coalescing batcher), not RLZ decode speed.
//
// Two request shapes, matching the two serving stories:
//  - snippet: GetRange of a 400-byte query-biased window (the paper's
//    snippet path). Tiny payloads make per-request overhead — syscalls,
//    loopback round trips, frame headers — the dominant cost, which is
//    exactly what pipelining and request coalescing amortize. These rows
//    form the sweep and the gate.
//  - bulk: MultiGet of a 4-document result page (~70 KB of payload).
//    Throughput here is memcpy/bandwidth-bound, so pipelining buys little
//    and deep pipelines mostly add queueing; the pair is recorded
//    ungated to document that boundary honestly.
//
// Reports wall-clock requests/s plus client-observed round-trip latency
// percentiles per row (at depth > 1 latency includes pipeline queueing,
// which is the point), and writes machine-readable JSON (default
// BENCH_net.json).
//
// The smoke gate asserts the subsystem's reason to exist: at 4
// connections, snippet depth-16 requests/s must be at least
// kMinPipelineRatio x depth-1 (best of kGateRepeats runs each). The gate
// is wall-clock on every host — pipelining amortizes per-request
// overhead, not cores, so it holds on 1-vCPU runners.
//
// The --overload phase (DESIGN.md §14) measures the overload-protection
// story on a dedicated overload-tuned server (one worker, small queues,
// tight per-connection best-effort budget): a best-effort flood drives
// sustained shedding while paced high-priority traffic measures accepted
// latency. Two gates: shed responses fail fast (client-observed median
// under 1 ms — rejection must be cheaper than service), and accepted
// high-priority p99 stays within 2x the unsaturated p99 measured on the
// same server without the flood (overload must not leak into the classes
// admission protects).
//
//   ./build/bench/net_load_bench              full sweep
//   ./build/bench/net_load_bench --smoke      small corpus, gated subset
//         (run by the perf-smoke CI job; exit 1 on gate failure)
//   ./build/bench/net_load_bench --overload   add the overload phase +
//         its gates (exit 1 on failure; CI runs --smoke --overload)
//   ./build/bench/net_load_bench --out FILE   JSON destination

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generator.h"
#include "io/file.h"
#include "net/doc_server.h"
#include "net/net_client.h"
#include "serve/doc_service.h"
#include "serve/sharded_store.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace rlz {
namespace bench {
namespace {

// The perf-smoke CI gate: at 4 connections, snippet depth-16 must beat
// depth-1 by this factor on requests/s.
constexpr double kMinPipelineRatio = 1.3;
// Gated rows are measured this many times; the best run gates (absorbs
// scheduler noise on shared CI runners).
constexpr int kGateRepeats = 2;
// Snippet window length (the example's query-biased window).
constexpr size_t kSnippetBytes = 400;
// Documents per bulk MultiGet request (a search result page).
constexpr size_t kPageDocs = 4;
// Overload gates (DESIGN.md §14): a shed must come back faster than this
// (median, client-observed), and accepted high-priority p99 under the
// flood must stay within this factor of the unsaturated p99 (the basis
// has a floor so a too-lucky baseline cannot make the gate unmeetable:
// on a 1-vCPU runner the unsaturated p99 can land under 100 us while
// scheduler timeslicing alone adds ~0.5 ms tail spikes under any
// concurrent load, so sub-ms baselines are not resolvable beyond noise).
constexpr double kMaxShedP50Us = 1000.0;
constexpr double kMaxOverloadP99Ratio = 2.0;
constexpr double kOverloadBasisFloorUs = 500.0;

enum class Shape { kSnippet, kBulk };

struct NetLoadResult {
  double wall_rps = 0.0;  // requests (response frames) per second
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  uint64_t requests = 0;
  uint64_t payload_bytes = 0;
  uint64_t batches = 0;    // server-side coalescing window count (delta)
  uint64_t coalesced = 0;  // doc requests in those windows (delta)
};

// One closed-loop row: `connections` client threads, each keeping `depth`
// requests in flight until it has received `requests_per_conn` responses.
// Latencies are per-response round trips measured at the client. The
// server (and its warm cache) is shared across rows; batcher counters
// are reported as deltas.
NetLoadResult RunRow(net::DocServer& server, size_t num_docs, Shape shape,
                     int connections, size_t depth,
                     size_t requests_per_conn) {
  const net::NetServerStats before = server.stats();
  std::vector<std::vector<double>> latencies(connections);
  std::vector<uint64_t> bytes(connections, 0);
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      auto client_or = net::NetClient::Connect(server.port());
      RLZ_CHECK(client_or.ok()) << client_or.status().ToString();
      auto client = std::move(client_or).value();
      Rng rng(0xbe7c0de + 31 * static_cast<uint64_t>(c));
      std::vector<uint64_t> ids(kPageDocs);
      std::vector<double> sent_at(depth);  // ring of in-flight send times
      Timer timer;
      size_t issued = 0;
      size_t received = 0;
      auto& lat = latencies[c];
      lat.reserve(requests_per_conn);
      const auto send_one = [&] {
        if (shape == Shape::kSnippet) {
          client->SendGetRange(rng.Uniform(num_docs), rng.Uniform(1024),
                               kSnippetBytes);
        } else {
          for (auto& id : ids) id = rng.Uniform(num_docs);
          client->SendMultiGet(ids);
        }
        sent_at[issued % depth] = timer.ElapsedSeconds();
        ++issued;
      };
      while (issued < depth && issued < requests_per_conn) send_one();
      while (received < requests_per_conn) {
        auto response = client->Receive();
        RLZ_CHECK(response.ok()) << response.status().ToString();
        RLZ_CHECK(response->ok()) << response->payload;
        if (shape == Shape::kSnippet) {
          RLZ_CHECK(response->payload.size() <= kSnippetBytes);
          bytes[c] += response->payload.size();
        } else {
          RLZ_CHECK(response->elements.size() == kPageDocs);
          for (const auto& elem : response->elements) {
            RLZ_CHECK(elem.code == net::WireCode::kOk);
            bytes[c] += elem.bytes.size();
          }
        }
        lat.push_back(timer.ElapsedSeconds() - sent_at[received % depth]);
        ++received;
        if (issued < requests_per_conn) send_one();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_seconds = wall.ElapsedSeconds();
  const net::NetServerStats after = server.stats();

  NetLoadResult result;
  std::vector<double> merged;
  for (auto& lat : latencies) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  std::sort(merged.begin(), merged.end());
  const auto pct = [&](double p) {
    return merged.empty()
               ? 0.0
               : 1e6 * merged[std::min(merged.size() - 1,
                                       static_cast<size_t>(p * merged.size()))];
  };
  result.requests = merged.size();
  for (uint64_t b : bytes) result.payload_bytes += b;
  result.wall_rps = result.requests / wall_seconds;
  result.p50_us = pct(0.50);
  result.p99_us = pct(0.99);
  result.p999_us = pct(0.999);
  result.batches = after.batches - before.batches;
  result.coalesced = after.coalesced_requests - before.coalesced_requests;
  return result;
}

void PrintRow(const char* shape, int connections, size_t depth,
              const NetLoadResult& r) {
  std::printf("%-8s %-12d %-8zu %10.0f %9.1f %9.1f %9.1f %8.1f\n", shape,
              connections, depth, r.wall_rps, r.p50_us, r.p99_us, r.p999_us,
              r.batches > 0 ? static_cast<double>(r.coalesced) / r.batches
                            : 0.0);
}

void AppendJsonRow(const char* shape, int connections, size_t depth,
                   const NetLoadResult& r, bool last, std::string* json) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"shape\": \"%s\", \"connections\": %d, \"depth\": %zu, "
      "\"requests\": %llu, \"wall_rps\": %.0f, \"p50_us\": %.1f, "
      "\"p99_us\": %.1f, \"p999_us\": %.1f, \"payload_bytes\": %llu, "
      "\"batches\": %llu, \"coalesced\": %llu}%s\n",
      shape, connections, depth,
      static_cast<unsigned long long>(r.requests), r.wall_rps, r.p50_us,
      r.p99_us, r.p999_us,
      static_cast<unsigned long long>(r.payload_bytes),
      static_cast<unsigned long long>(r.batches),
      static_cast<unsigned long long>(r.coalesced), last ? "" : ",");
  json->append(buf);
}

// Percentile (µs) over a vector of latencies in seconds (copies + sorts;
// overload-phase vectors are small).
double PercentileUs(std::vector<double> latencies, double p) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  return 1e6 * latencies[std::min(latencies.size() - 1,
                                  static_cast<size_t>(p * latencies.size()))];
}

// The overload phase's measured load: `connections` paced (depth-1)
// high-priority snippet clients, each running `requests_per_conn` round
// trips. Returns the merged client-observed latencies in seconds. Every
// response must be served — high priority is the class admission
// protects, so a shed here is a bench failure, not a data point.
std::vector<double> RunPacedHigh(uint16_t port, size_t num_docs,
                                 int connections,
                                 size_t requests_per_conn) {
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      net::NetClientOptions copts;
      copts.priority = RequestPriority::kHigh;
      auto client_or = net::NetClient::Connect(port, copts);
      RLZ_CHECK(client_or.ok()) << client_or.status().ToString();
      auto client = std::move(client_or).value();
      Rng rng(0x0f00d + 17 * static_cast<uint64_t>(c));
      Timer timer;
      auto& lat = latencies[c];
      lat.reserve(requests_per_conn);
      for (size_t i = 0; i < requests_per_conn; ++i) {
        const double t0 = timer.ElapsedSeconds();
        auto r = client->GetRange(rng.Uniform(num_docs), rng.Uniform(1024),
                                  kSnippetBytes);
        RLZ_CHECK(r.ok()) << "high-priority request failed under load: "
                          << r.status().ToString();
        lat.push_back(timer.ElapsedSeconds() - t0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<double> merged;
  for (auto& lat : latencies) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  return merged;
}

// One best-effort flood connection: bursts of `depth` pipelined Get
// requests until `stop`. With depth > the server's per-connection
// best-effort budget, every burst sheds the excess at parse time —
// sustained overload by construction. Between bursts the client sleeps
// a short think time, modeling shed clients that honor backoff instead
// of busy-looping (NetClient's retry policy); without it, flood threads
// spinning on fast sheds would measure host CPU contention, not the
// server's overload behavior. Records client-observed round-trip
// latency of each shed (the fail-fast path the gate measures) and
// counts served vs shed responses.
void FloodBestEffort(uint16_t port, size_t num_docs, size_t depth,
                     const std::atomic<bool>* stop,
                     std::vector<double>* shed_latencies, uint64_t* served,
                     uint64_t* sheds) {
  net::NetClientOptions copts;
  copts.priority = RequestPriority::kBestEffort;
  auto client_or = net::NetClient::Connect(port, copts);
  RLZ_CHECK(client_or.ok()) << client_or.status().ToString();
  auto client = std::move(client_or).value();
  Rng rng(0xf100d + 41 * static_cast<uint64_t>(port));
  Timer timer;
  std::vector<double> sent_at(depth);
  while (!stop->load(std::memory_order_relaxed)) {
    for (size_t i = 0; i < depth; ++i) {
      client->SendGet(rng.Uniform(num_docs));
      sent_at[i] = timer.ElapsedSeconds();
    }
    for (size_t i = 0; i < depth; ++i) {
      auto response = client->Receive();
      RLZ_CHECK(response.ok()) << response.status().ToString();
      const double rtt = timer.ElapsedSeconds() - sent_at[i];
      if (response->code == net::WireCode::kOk) {
        ++*served;
      } else {
        RLZ_CHECK(response->code == net::WireCode::kUnavailable)
            << "unexpected flood response code "
            << net::WireCodeToString(response->code);
        shed_latencies->push_back(rtt);
        ++*sheds;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// One overload run's numbers (best of kGateRepeats by accepted p99).
struct OverloadPhase {
  double unsat_p50_us = 0.0;
  double unsat_p99_us = 0.0;
  double accepted_p50_us = 0.0;
  double accepted_p99_us = 0.0;
  double shed_p50_us = 0.0;
  double shed_p99_us = 0.0;
  uint64_t unsat_requests = 0;
  uint64_t accepted = 0;
  uint64_t sheds = 0;
  uint64_t flood_served = 0;
};

// The overload phase (DESIGN.md §14): a dedicated overload-tuned server
// (one worker, small admission queue, best-effort budget of 4 per
// connection — overload must be reachable on any host) serving two
// loads at once: a 4-connection depth-16 best-effort flood that sheds
// by construction, and paced high-priority clients measuring accepted
// latency. The unsaturated baseline is the same paced load on the same
// server without the flood.
OverloadPhase RunOverload(ShardedStore* store, size_t num_docs,
                          bool smoke) {
  DocServiceOptions service_options;
  service_options.num_threads = 1;
  service_options.queue_depth = 64;
  service_options.cache_bytes = 64u << 20;
  DocService service(store, service_options);
  net::DocServerOptions server_options;
  server_options.max_best_effort_per_conn = 4;
  net::DocServer server(&service, server_options);
  const Status started = server.Start();
  RLZ_CHECK(started.ok()) << started.ToString();
  {
    // Warm this service's cache too: the phase measures admission and
    // shedding, not decode speed.
    ServeBatch batch;
    std::vector<size_t> ids(num_docs);
    for (size_t i = 0; i < num_docs; ++i) ids[i] = i;
    service.SubmitBatch(ids, &batch);
    for (const GetResult& r : batch.Wait()) {
      RLZ_CHECK(r.ok()) << r.status.ToString();
    }
  }

  const int measured_conns = 2;
  const size_t measured_requests = smoke ? 1500 : 4000;
  const int flood_conns = 4;
  const size_t flood_depth = 16;

  OverloadPhase best;
  for (int rep = 0; rep < kGateRepeats; ++rep) {
    OverloadPhase r;
    std::vector<double> unsat =
        RunPacedHigh(server.port(), num_docs, measured_conns,
                     measured_requests);
    r.unsat_requests = unsat.size();
    r.unsat_p50_us = PercentileUs(unsat, 0.50);
    r.unsat_p99_us = PercentileUs(unsat, 0.99);

    std::atomic<bool> stop{false};
    std::vector<std::vector<double>> shed_latencies(flood_conns);
    std::vector<uint64_t> served(flood_conns, 0);
    std::vector<uint64_t> sheds(flood_conns, 0);
    std::vector<std::thread> flood;
    flood.reserve(flood_conns);
    for (int f = 0; f < flood_conns; ++f) {
      flood.emplace_back([&, f] {
        FloodBestEffort(server.port(), num_docs, flood_depth, &stop,
                        &shed_latencies[f], &served[f], &sheds[f]);
      });
    }
    // Let the flood saturate before measuring.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::vector<double> accepted =
        RunPacedHigh(server.port(), num_docs, measured_conns,
                     measured_requests);
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : flood) t.join();

    r.accepted = accepted.size();
    r.accepted_p50_us = PercentileUs(accepted, 0.50);
    r.accepted_p99_us = PercentileUs(accepted, 0.99);
    std::vector<double> shed_merged;
    for (int f = 0; f < flood_conns; ++f) {
      shed_merged.insert(shed_merged.end(), shed_latencies[f].begin(),
                         shed_latencies[f].end());
      r.sheds += sheds[f];
      r.flood_served += served[f];
    }
    RLZ_CHECK(r.sheds > 0) << "overload phase produced no sheds";
    r.shed_p50_us = PercentileUs(shed_merged, 0.50);
    r.shed_p99_us = PercentileUs(shed_merged, 0.99);
    if (rep == 0 || r.accepted_p99_us < best.accepted_p99_us) best = r;
  }
  server.Shutdown();
  service.Shutdown();
  return best;
}

int Run(bool smoke, bool overload, const std::string& out_path) {
  CorpusOptions corpus_options;
  corpus_options.target_bytes = smoke ? (4u << 20) : (8u << 20);
  corpus_options.seed = 20110613;
  const Corpus corpus = GenerateCorpus(corpus_options);
  const Collection& collection = corpus.collection;

  ShardedStoreOptions store_options;
  store_options.num_shards = 4;
  store_options.dict_bytes = collection.size_bytes() / 100;
  const auto store = ShardedStore::Build(collection, store_options);
  const size_t num_docs = collection.num_docs();

  // One service + server for every row: the decode cache holds the whole
  // collection after warmup, so rows measure the wire, not the decoder.
  DocServiceOptions service_options;
  service_options.num_threads = 4;
  service_options.cache_bytes = 64u << 20;
  DocService service(store.get(), service_options);
  net::DocServer server(&service);
  const Status started = server.Start();
  RLZ_CHECK(started.ok()) << started.ToString();

  // Correctness spot check before any timing: wire bytes == direct bytes.
  {
    auto client_or = net::NetClient::Connect(server.port());
    RLZ_CHECK(client_or.ok()) << client_or.status().ToString();
    auto client = std::move(client_or).value();
    Rng rng(7);
    for (int i = 0; i < 16; ++i) {
      const size_t id = rng.Uniform(num_docs);
      auto wire = client->Get(id);
      RLZ_CHECK(wire.ok()) << wire.status().ToString();
      const GetResult direct = service.Get(id).get();
      RLZ_CHECK(direct.ok()) << direct.status.ToString();
      RLZ_CHECK(*wire == *direct.text) << "wire/direct mismatch doc " << id;
    }
  }
  // Cache warmup: touch every document once.
  {
    ServeBatch batch;
    std::vector<size_t> ids(num_docs);
    for (size_t i = 0; i < num_docs; ++i) ids[i] = i;
    service.SubmitBatch(ids, &batch);
    for (const GetResult& r : batch.Wait()) {
      RLZ_CHECK(r.ok()) << r.status.ToString();
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const size_t snippet_requests = smoke ? 3000 : 10000;
  const size_t bulk_requests = smoke ? 400 : 1500;
  std::printf("net_load_bench (%s): %zu docs, %.1f MB, %s, hw=%u, "
              "snippet=%zu B, page=%zu docs\n",
              smoke ? "smoke" : "full", num_docs,
              collection.size_bytes() / (1024.0 * 1024.0),
              store->name().c_str(), hw, kSnippetBytes, kPageDocs);
  std::printf("%-8s %-12s %-8s %10s %9s %9s %9s %8s\n", "shape",
              "connections", "depth", "req/s", "p50 us", "p99 us",
              "p999 us", "avg/bat");

  std::string json;
  char buf[512];
  json.append("{\n  \"bench\": \"net_load\",\n");
  json.append(smoke ? "  \"mode\": \"smoke\",\n" : "  \"mode\": \"full\",\n");
  std::snprintf(buf, sizeof(buf),
                "  \"corpus\": {\"docs\": %zu, \"bytes\": %llu, "
                "\"seed\": %llu},\n",
                num_docs,
                static_cast<unsigned long long>(collection.size_bytes()),
                static_cast<unsigned long long>(corpus_options.seed));
  json.append(buf);
  std::snprintf(buf, sizeof(buf),
                "  \"store\": \"%s\",\n  \"host\": "
                "{\"hardware_concurrency\": %u},\n",
                store->name().c_str(), hw);
  json.append(buf);
  std::snprintf(buf, sizeof(buf),
                "  \"config\": {\"snippet_bytes\": %zu, \"page_docs\": %zu, "
                "\"snippet_requests_per_conn\": %zu, "
                "\"bulk_requests_per_conn\": %zu, \"cache_warm\": true},\n",
                kSnippetBytes, kPageDocs, snippet_requests, bulk_requests);
  json.append(buf);
  json.append("  \"rows\": [\n");

  // The snippet sweep. The gated pair (4 connections, depth 1 vs 16) is
  // measured kGateRepeats times in smoke mode; the best run is recorded
  // and gates.
  const std::vector<int> conn_sweep = smoke ? std::vector<int>{1, 4}
                                            : std::vector<int>{1, 2, 4, 8};
  const std::vector<size_t> depth_sweep =
      smoke ? std::vector<size_t>{1, 16} : std::vector<size_t>{1, 4, 16};
  NetLoadResult gate_shallow, gate_deep;
  for (const int conns : conn_sweep) {
    for (const size_t depth : depth_sweep) {
      const bool gated = conns == 4 && (depth == 1 || depth == 16);
      NetLoadResult best;
      const int repeats = (smoke && gated) ? kGateRepeats : 1;
      for (int rep = 0; rep < repeats; ++rep) {
        const NetLoadResult r = RunRow(server, num_docs, Shape::kSnippet,
                                       conns, depth, snippet_requests);
        if (rep == 0 || r.wall_rps > best.wall_rps) best = r;
      }
      if (conns == 4 && depth == 1) gate_shallow = best;
      if (conns == 4 && depth == 16) gate_deep = best;
      PrintRow("snippet", conns, depth, best);
      AppendJsonRow("snippet", conns, depth, best, /*last=*/false, &json);
    }
  }
  // The bulk pair: bandwidth-bound result pages, recorded ungated.
  for (const size_t depth : {size_t{1}, size_t{16}}) {
    const NetLoadResult r =
        RunRow(server, num_docs, Shape::kBulk, 4, depth, bulk_requests);
    PrintRow("bulk", 4, depth, r);
    AppendJsonRow("bulk", 4, depth, r, /*last=*/depth == 16, &json);
  }
  json.append("  ],\n");

  const net::NetServerStats net_stats = server.stats();
  std::snprintf(
      buf, sizeof(buf),
      "  \"server\": {\"connections_accepted\": %llu, "
      "\"frames_received\": %llu, \"bytes_sent\": %llu, "
      "\"reads_paused\": %llu, \"protocol_errors\": %llu},\n",
      static_cast<unsigned long long>(net_stats.connections_accepted),
      static_cast<unsigned long long>(net_stats.frames_received),
      static_cast<unsigned long long>(net_stats.bytes_sent),
      static_cast<unsigned long long>(net_stats.reads_paused),
      static_cast<unsigned long long>(net_stats.protocol_errors));
  json.append(buf);

  bool overload_pass = true;
  if (overload) {
    const OverloadPhase o = RunOverload(store.get(), num_docs, smoke);
    const double basis = std::max(o.unsat_p99_us, kOverloadBasisFloorUs);
    const double p99_ratio = o.accepted_p99_us / basis;
    const bool shed_pass = o.shed_p50_us < kMaxShedP50Us;
    const bool p99_pass = o.accepted_p99_us <= kMaxOverloadP99Ratio * basis;
    overload_pass = shed_pass && p99_pass;
    std::printf(
        "overload: 4x16 best-effort flood (budget 4/conn) vs 2x depth-1 "
        "high\n"
        "  unsaturated  p50 %8.1f us  p99 %8.1f us  (%llu requests)\n"
        "  accepted     p50 %8.1f us  p99 %8.1f us  (%llu requests)\n"
        "  shed         p50 %8.1f us  p99 %8.1f us  (%llu sheds, %llu "
        "flood served)\n",
        o.unsat_p50_us, o.unsat_p99_us,
        static_cast<unsigned long long>(o.unsat_requests), o.accepted_p50_us,
        o.accepted_p99_us, static_cast<unsigned long long>(o.accepted),
        o.shed_p50_us, o.shed_p99_us,
        static_cast<unsigned long long>(o.sheds),
        static_cast<unsigned long long>(o.flood_served));
    std::printf(
        "overload gate: shed p50 < %.0f us: %s (%.1f us); accepted p99 <= "
        "%.1fx basis %.1f us: %s (%.2fx)\n",
        kMaxShedP50Us, shed_pass ? "PASS" : "FAIL", o.shed_p50_us,
        kMaxOverloadP99Ratio, basis, p99_pass ? "PASS" : "FAIL", p99_ratio);
    std::snprintf(
        buf, sizeof(buf),
        "  \"overload\": {\"unsat_p50_us\": %.1f, \"unsat_p99_us\": %.1f, "
        "\"unsat_requests\": %llu, \"accepted_p50_us\": %.1f, "
        "\"accepted_p99_us\": %.1f, \"accepted\": %llu,\n",
        o.unsat_p50_us, o.unsat_p99_us,
        static_cast<unsigned long long>(o.unsat_requests), o.accepted_p50_us,
        o.accepted_p99_us, static_cast<unsigned long long>(o.accepted));
    json.append(buf);
    std::snprintf(
        buf, sizeof(buf),
        "    \"shed_p50_us\": %.1f, \"shed_p99_us\": %.1f, \"sheds\": %llu, "
        "\"flood_served\": %llu, \"max_shed_p50_us\": %.0f, "
        "\"max_p99_ratio\": %.1f, \"p99_basis_us\": %.1f, "
        "\"p99_ratio\": %.2f, \"pass\": %s},\n",
        o.shed_p50_us, o.shed_p99_us,
        static_cast<unsigned long long>(o.sheds),
        static_cast<unsigned long long>(o.flood_served), kMaxShedP50Us,
        kMaxOverloadP99Ratio, basis, p99_ratio,
        overload_pass ? "true" : "false");
    json.append(buf);
  }

  const double ratio = gate_shallow.wall_rps > 0
                           ? gate_deep.wall_rps / gate_shallow.wall_rps
                           : 0.0;
  const bool gate_pass = ratio >= kMinPipelineRatio;
  std::snprintf(
      buf, sizeof(buf),
      "  \"gate\": {\"basis\": \"wall\", \"shape\": \"snippet\", "
      "\"min_pipeline_ratio\": %.2f, \"depth1_rps\": %.0f, "
      "\"depth16_rps\": %.0f, \"ratio\": %.2f, \"pass\": %s}\n}\n",
      kMinPipelineRatio, gate_shallow.wall_rps, gate_deep.wall_rps, ratio,
      gate_pass ? "true" : "false");
  json.append(buf);

  const Status write_status = WriteFile(out_path, json);
  RLZ_CHECK(write_status.ok()) << write_status.ToString();
  std::printf("wrote %s\n", out_path.c_str());

  server.Shutdown();
  service.Shutdown();
  if (smoke) {
    std::printf("smoke gate (wall basis, snippet): 4-conn depth-16 >= "
                "%.2fx depth-1: %s (%.2fx)\n",
                kMinPipelineRatio, gate_pass ? "PASS" : "FAIL", ratio);
    if (!gate_pass) return 1;
  }
  if (!overload_pass) return 1;
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace rlz

int main(int argc, char** argv) {
  bool smoke = false;
  bool overload = false;
  std::string out_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      overload = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--overload] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  return rlz::bench::Run(smoke, overload, out_path);
}
