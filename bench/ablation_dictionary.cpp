// Ablation (paper §6 future work): multi-pass dictionary pruning. Build a
// dictionary, factorize with coverage tracking, drop unused intervals,
// refill with fresh samples, repeat. Prints unused% and compression per
// pass — the expectation from the paper (and its SIGIR'11 follow-up) is
// that pruning recovers wasted dictionary space and improves compression
// at equal memory.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/rlz.h"
#include "suffix/lcp.h"

namespace {

struct PassResult {
  double unused_pct;
  double enc_pct;
  size_t dict_bytes;
  double self_repeat_pct;  // dictionary bytes with a >=32-byte internal twin
};

PassResult EvaluateDict(const rlz::Collection& collection,
                        std::shared_ptr<const rlz::Dictionary> dict,
                        rlz::RlzBuildInfo* info) {
  rlz::RlzBuildOptions build;
  build.coding = rlz::kZV;
  build.track_coverage = true;
  auto archive = rlz::RlzArchive::Build(collection, dict, build, info);
  PassResult r;
  r.unused_pct = 100.0 * info->unused_dictionary_fraction;
  r.enc_pct = 100.0 * static_cast<double>(archive->stored_bytes()) /
              static_cast<double>(collection.size_bytes());
  r.dict_bytes = dict->size();
  // Internal duplication of the dictionary itself (the §6 "redundancy
  // throughout the dictionary" that pruning targets), via the LCP array.
  r.self_repeat_pct =
      100.0 * rlz::ComputeRepeatStats(dict->text(), dict->matcher().sa(), 32)
                  .repeat_fraction;
  return r;
}

}  // namespace

int main() {
  using namespace rlz;
  const Corpus& corpus = bench::Gov2Crawl();
  const Collection& collection = corpus.collection;
  bench::PrintTableTitle("Ablation: multi-pass dictionary pruning (ZV, 1.0)",
                         collection);

  const size_t dict_bytes =
      static_cast<size_t>(0.01 * collection.size_bytes());
  constexpr size_t kSample = 1024;

  std::printf("%-8s %12s %10s %10s %12s\n", "Pass", "Dict(bytes)",
              "Unused(%)", "Enc.(%)", "SelfRep(%)");

  std::shared_ptr<const Dictionary> dict =
      DictionaryBuilder::BuildSampled(collection.data(), dict_bytes, kSample);
  RlzBuildInfo info;
  PassResult r = EvaluateDict(collection, dict, &info);
  std::printf("%-8d %12zu %10.2f %10.2f %12.2f\n", 0, r.dict_bytes,
              r.unused_pct, r.enc_pct, r.self_repeat_pct);

  for (int pass = 1; pass <= 3; ++pass) {
    dict = DictionaryBuilder::BuildPruned(collection.data(), *dict,
                                          info.coverage, kSample,
                                          /*refill_phase=*/pass);
    r = EvaluateDict(collection, dict, &info);
    std::printf("%-8d %12zu %10.2f %10.2f %12.2f\n", pass, r.dict_bytes,
                r.unused_pct, r.enc_pct, r.self_repeat_pct);
  }
  return 0;
}
