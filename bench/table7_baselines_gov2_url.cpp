// Reproduces Table 7: ASCII and blocked gzipx/lzmax baselines on the
// URL-sorted GOV2-like corpus. Blocked methods gain compression from URL
// locality (Ferragina & Manzini's observation, §3.5).

#include "bench_common.h"

int main() {
  rlz::bench::RunBaselineTable(
      "Table 7: baselines on gov2s, URL-sorted (GOV2 stand-in)",
      rlz::bench::Gov2Url());
  return 0;
}
