// Ablation (paper §2.1): semi-static word-based compression — byte-
// oriented Plain Huffman and End-Tagged Dense Code — against RLZ on the
// same collection. Reproduces the section's qualitative claims: semi-
// static codes support fast random access but are bounded by zero-order
// word entropy ("at least 20% of the original"), markedly worse than RLZ's
// 9-14%, and their decode-time vocabulary grows with the collection (the
// ClueWeb 13 GB lexicon problem, reported here as model memory and
// singleton fraction).

#include <cstdio>

#include "bench_common.h"
#include "core/rlz.h"
#include "semistatic/semistatic_archive.h"

int main() {
  using namespace rlz;
  const Corpus& corpus = bench::Gov2Crawl();
  const Collection& collection = corpus.collection;
  bench::PrintTableTitle("Ablation: semi-static word codes (§2.1) vs RLZ",
                         collection);
  const bench::AccessPatterns patterns = bench::MakePatterns(corpus);

  std::printf("%-12s %9s %12s %10s %14s %10s\n", "Method", "Enc.(%)",
              "Sequential", "QueryLog", "Model(MB)", "Single(%)");

  for (const SemiStaticScheme scheme :
       {SemiStaticScheme::kPlainHuffman, SemiStaticScheme::kEtdc}) {
    auto archive = SemiStaticArchive::Build(collection, scheme);
    const bench::Measurement m =
        bench::MeasureArchive(*archive, collection, patterns);
    std::printf("%-12s %9.2f %12.0f %10.0f %14.2f %10.2f\n",
                archive->name().c_str(), m.enc_pct, m.sequential_dps,
                m.query_log_dps,
                archive->model_memory_bytes() / 1048576.0,
                100.0 * archive->vocabulary().singleton_fraction());
  }

  {
    RlzOptions options;
    options.dict_bytes = static_cast<size_t>(0.01 * collection.size_bytes());
    options.coding = kZV;
    auto archive = CompressCollection(collection, options);
    const bench::Measurement m =
        bench::MeasureArchive(*archive, collection, patterns);
    std::printf("%-12s %9.2f %12.0f %10.0f %14.2f %10s\n", "rlz-ZV(1.0)",
                m.enc_pct, m.sequential_dps, m.query_log_dps,
                archive->dictionary().size() / 1048576.0, "-");
  }
  return 0;
}
