// Reproduces Table 3: average factor length and unused dictionary
// percentage for varied dictionary and sample sizes on the Wikipedia-like
// corpus.

#include "bench_common.h"

int main() {
  rlz::bench::RunFactorStatsTable(
      "Table 3: RLZ factor statistics on wikis (Wikipedia stand-in)",
      rlz::bench::WikiCrawl());
  return 0;
}
