// Ablation (paper §6 future work): alternative integer codes for the
// position and length streams — Simple9 and PForDelta against the paper's
// vbyte/u32/zlib combinations. Prints compression and decode speed for
// every coding on the GOV2-like corpus with a "1.0" dictionary.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/rlz.h"

int main() {
  using namespace rlz;
  const Corpus& corpus = bench::Gov2Crawl();
  const Collection& collection = corpus.collection;
  bench::PrintTableTitle(
      "Ablation: factor-stream codecs (paper codings + S9/PFD extensions)",
      collection);
  const bench::AccessPatterns patterns = bench::MakePatterns(corpus);

  std::shared_ptr<const Dictionary> dict = DictionaryBuilder::BuildSampled(
      collection.data(), static_cast<size_t>(0.01 * collection.size_bytes()),
      1024);
  Factorizer factorizer(dict.get());
  std::vector<std::vector<Factor>> factors(collection.num_docs());
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    factorizer.Factorize(collection.doc(i), &factors[i]);
  }

  bench::PrintRlzHeader();
  for (const char* name : {"ZZ", "ZV", "UZ", "UV",  // the paper's four
                           "US", "UP", "PV", "PZ", "PS", "PP"}) {
    const auto coding = PairCoding::FromName(name);
    auto archive =
        RlzArchive::BuildFromFactors(dict, factors, coding.value());
    const bench::Measurement m =
        bench::MeasureArchive(*archive, collection, patterns);
    bench::PrintRlzRow("1.0", name, m);
  }
  return 0;
}
