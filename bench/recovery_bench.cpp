// Durability-cost benchmark (DESIGN.md §12): measures what crash safety
// costs on the mutation path and what recovery costs at startup.
//
//   appends/s vs fsync policy — the same append workload against a
//       durable ShardedStore under fsync_every_n = 1 (every acked
//       mutation durable), 8, and 64 (group commit, loss bounded to the
//       unsynced batch). The spread is the price of the WAL's durability
//       knob, EXPERIMENTS.md "Durability cost".
//   cold start — reopening the same directory three ways: OpenDurable
//       with the whole workload still in the WAL (replay-bound),
//       OpenDurable after a checkpoint (load-bound), and a plain saved
//       manifest through read-all vs mmap opens (the zero-copy story of
//       DESIGN.md §10 extended to real files).
//
// Results are printed and written as JSON (default BENCH_recovery.json).
//
//   ./build/bench/recovery_bench                 full run
//   ./build/bench/recovery_bench --smoke         small corpus + gate:
//         every recovered store must serve the acked workload back
//         byte-identically, else exit 1 (run by the perf-smoke CI job)
//   ./build/bench/recovery_bench --crash-smoke   bounded kill-at-fsync
//         sweep through FaultFs (release-mode CI sanity): recovery after
//         every injected crash must yield a durable prefix of the acked
//         appends, else exit 1
//   ./build/bench/recovery_bench --out FILE      JSON destination

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/generator.h"
#include "io/fault_fs.h"
#include "io/file.h"
#include "serve/sharded_store.h"
#include "store/open_archive.h"
#include "store/wal/wal_writer.h"
#include "util/logging.h"
#include "util/timer.h"

namespace rlz {
namespace bench {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::unique_ptr<ShardedStore> BuildStore(const Collection& collection) {
  ShardedStoreOptions options;
  options.num_shards = 4;
  options.dict_bytes = 1 << 16;
  options.live.tail_seal_bytes = 0;  // keep every append in the WAL'd tail
  return ShardedStore::Build(collection, options);
}

struct PolicyResult {
  std::string name;
  uint64_t fsync_every_n = 1;
  double appends_per_s = 0;
  double append_mb_per_s = 0;
  double recover_ms = 0;
  double replays_per_s = 0;
};

// One append workload under one fsync policy, then a cold-start reopen
// that replays the whole workload from the WAL.
PolicyResult RunPolicy(const Collection& collection,
                       const std::vector<std::string>& docs,
                       const std::string& name, uint64_t fsync_every_n,
                       bool* gate_pass) {
  PolicyResult result;
  result.name = name;
  result.fsync_every_n = fsync_every_n;
  const std::string dir = FreshDir("rlz_recovery_bench_" + name);
  size_t base = 0;
  uint64_t appended_bytes = 0;
  {
    auto store = BuildStore(collection);
    base = store->num_docs();
    wal::WalWriterOptions wal_options;
    wal_options.fsync_every_n = fsync_every_n;
    const Status status = store->MakeDurable(dir, wal_options);
    RLZ_CHECK(status.ok()) << status.ToString();
    Timer append_timer;
    for (const std::string& doc : docs) {
      RLZ_CHECK(store->Append(doc).ok());
      appended_bytes += doc.size();
    }
    // The trailing barrier: every policy pays for full durability before
    // the clock stops, so relaxed policies are not credited for work
    // they left unsynced.
    RLZ_CHECK(store->SyncWal().ok());
    const double seconds = append_timer.ElapsedSeconds();
    result.appends_per_s = docs.size() / seconds;
    result.append_mb_per_s = appended_bytes / (1024.0 * 1024.0) / seconds;
  }

  Timer recover_timer;
  ShardedStore::RecoveryReport report;
  auto reopened = ShardedStore::OpenDurable(dir, {}, {}, nullptr, &report);
  RLZ_CHECK(reopened.ok()) << reopened.status().ToString();
  result.recover_ms = recover_timer.ElapsedMillis();
  result.replays_per_s = report.replayed_records / (result.recover_ms / 1e3);

  // The gate: the recovered store serves the acked workload back
  // byte-identically.
  if (reopened.value()->num_docs() != base + docs.size() ||
      report.replayed_records != docs.size()) {
    std::fprintf(stderr, "GATE FAIL %s: recovered %zu docs, replayed %llu\n",
                 name.c_str(), reopened.value()->num_docs(),
                 static_cast<unsigned long long>(report.replayed_records));
    *gate_pass = false;
  }
  std::string doc;
  for (size_t i = 0; i < docs.size(); i += 97) {
    const Status status = reopened.value()->Get(base + i, &doc);
    if (!status.ok() || doc != docs[i]) {
      std::fprintf(stderr, "GATE FAIL %s: doc %zu mismatch\n", name.c_str(),
                   base + i);
      *gate_pass = false;
      break;
    }
  }
  std::filesystem::remove_all(dir);
  return result;
}

struct ColdStartResult {
  double checkpointed_open_ms = 0;  // OpenDurable, empty WAL
  double readall_open_ms = 0;       // plain manifest, read-all
  double mmap_open_ms = 0;          // plain manifest, mmap
};

ColdStartResult RunColdStart(const Collection& collection, int repeats,
                             bool* gate_pass) {
  ColdStartResult result;

  // Checkpointed durable open: everything covered, nothing to replay.
  const std::string dir = FreshDir("rlz_recovery_bench_cold");
  {
    auto store = BuildStore(collection);
    RLZ_CHECK(store->MakeDurable(dir).ok());
  }
  for (int r = 0; r < repeats; ++r) {
    Timer timer;
    auto reopened = ShardedStore::OpenDurable(dir);
    RLZ_CHECK(reopened.ok()) << reopened.status().ToString();
    result.checkpointed_open_ms += timer.ElapsedMillis() / repeats;
  }
  std::filesystem::remove_all(dir);

  // Saved manifest: read-all vs mmap opens of identical bytes.
  const std::string save_dir = FreshDir("rlz_recovery_bench_save");
  std::filesystem::create_directories(save_dir);
  const std::string manifest = save_dir + "/store.sharded";
  {
    auto store = BuildStore(collection);
    RLZ_CHECK(store->Save(manifest).ok());
  }
  std::string readall_doc;
  std::string mmap_doc;
  for (int r = 0; r < repeats; ++r) {
    {
      Timer timer;
      auto opened = ShardedStore::Open(manifest);
      RLZ_CHECK(opened.ok()) << opened.status().ToString();
      result.readall_open_ms += timer.ElapsedMillis() / repeats;
      RLZ_CHECK(opened.value()->Get(0, &readall_doc).ok());
    }
    {
      OpenOptions options;
      options.use_mmap = true;
      Timer timer;
      auto opened = ShardedStore::Open(manifest, options);
      RLZ_CHECK(opened.ok()) << opened.status().ToString();
      result.mmap_open_ms += timer.ElapsedMillis() / repeats;
      RLZ_CHECK(opened.value()->Get(0, &mmap_doc).ok());
    }
  }
  if (readall_doc != mmap_doc || readall_doc != collection.doc(0)) {
    std::fprintf(stderr, "GATE FAIL cold-start: mmap/read-all mismatch\n");
    *gate_pass = false;
  }
  std::filesystem::remove_all(save_dir);
  return result;
}

void Run(bool smoke, const std::string& out_path) {
  CorpusOptions corpus_options;
  corpus_options.target_bytes = smoke ? (1u << 20) : (8u << 20);
  corpus_options.seed = 20110613;
  const Collection collection = GenerateCorpus(corpus_options).collection;

  CorpusOptions tail_options;
  tail_options.target_bytes = smoke ? (1u << 19) : (2u << 20);
  tail_options.seed = 20110614;
  const Collection tail = GenerateCorpus(tail_options).collection;
  std::vector<std::string> docs;
  const size_t target_appends = smoke ? 400 : 4000;
  for (size_t i = 0; i < target_appends; ++i) {
    docs.emplace_back(tail.doc(i % tail.num_docs()));
  }

  std::printf("recovery_bench (%s): base %zu docs, %zu appends\n",
              smoke ? "smoke" : "full", collection.num_docs(), docs.size());

  bool gate_pass = true;
  std::vector<PolicyResult> policies;
  policies.push_back(RunPolicy(collection, docs, "fsync_1", 1, &gate_pass));
  policies.push_back(RunPolicy(collection, docs, "fsync_8", 8, &gate_pass));
  policies.push_back(RunPolicy(collection, docs, "fsync_64", 64, &gate_pass));
  for (const PolicyResult& p : policies) {
    std::printf(
        "  %-9s %8.0f appends/s  %6.1f MB/s  recover %6.1f ms "
        "(%.0f records/s)\n",
        p.name.c_str(), p.appends_per_s, p.append_mb_per_s, p.recover_ms,
        p.replays_per_s);
  }

  const ColdStartResult cold =
      RunColdStart(collection, smoke ? 3 : 5, &gate_pass);
  std::printf(
      "  cold start: checkpointed %.1f ms, read-all %.1f ms, mmap %.1f ms\n",
      cold.checkpointed_open_ms, cold.readall_open_ms, cold.mmap_open_ms);

  std::string json;
  json.append("{\n  \"bench\": \"recovery\",\n");
  json.append(smoke ? "  \"mode\": \"smoke\",\n" : "  \"mode\": \"full\",\n");
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"corpus\": {\"docs\": %zu, \"bytes\": %llu, "
                "\"appends\": %zu, \"seed\": %llu},\n",
                collection.num_docs(),
                static_cast<unsigned long long>(collection.size_bytes()),
                docs.size(),
                static_cast<unsigned long long>(corpus_options.seed));
  json.append(buf);
  json.append("  \"fsync_policies\": {\n");
  for (size_t i = 0; i < policies.size(); ++i) {
    const PolicyResult& p = policies[i];
    std::snprintf(buf, sizeof(buf),
                  "    \"%s\": {\"fsync_every_n\": %llu, "
                  "\"appends_per_s\": %.0f, \"append_mb_per_s\": %.2f, "
                  "\"recover_ms\": %.2f, \"replays_per_s\": %.0f}%s\n",
                  p.name.c_str(),
                  static_cast<unsigned long long>(p.fsync_every_n),
                  p.appends_per_s, p.append_mb_per_s, p.recover_ms,
                  p.replays_per_s, i + 1 < policies.size() ? "," : "");
    json.append(buf);
  }
  json.append("  },\n");
  std::snprintf(buf, sizeof(buf),
                "  \"cold_start_ms\": {\"checkpointed\": %.2f, "
                "\"readall\": %.2f, \"mmap\": %.2f},\n",
                cold.checkpointed_open_ms, cold.readall_open_ms,
                cold.mmap_open_ms);
  json.append(buf);
  std::snprintf(buf, sizeof(buf), "  \"gate\": \"%s\"\n}\n",
                gate_pass ? "pass" : "fail");
  json.append(buf);

  const Status write_status = WriteFile(out_path, json);
  RLZ_CHECK(write_status.ok()) << write_status.ToString();
  std::printf("wrote %s\n", out_path.c_str());
  if (smoke && !gate_pass) std::exit(1);
}

// Bounded kill-at-every-fsync sweep through FaultFs — the release-CI
// cousin of tests/recovery_test.cpp's exhaustive suites. Appends under
// fsync_every_n = 1; kills the writer at up to kMaxKills barriers (both
// entering and leaving each); after every crash the recovered store must
// hold every acked append byte-identically.
void RunCrashSmoke() {
  constexpr int kMaxKills = 24;
  constexpr size_t kAppends = 6;
  CorpusOptions corpus_options;
  corpus_options.target_bytes = 1u << 18;
  corpus_options.seed = 20110615;
  const Collection collection = GenerateCorpus(corpus_options).collection;
  std::vector<std::string> docs;
  for (size_t i = 0; i < kAppends; ++i) {
    docs.push_back("crash smoke doc " + std::to_string(i));
  }

  auto run_workload = [&](const std::shared_ptr<FaultFs>& fs,
                          bool* made_durable) {
    auto store = BuildStore(collection);
    *made_durable = store->MakeDurable("/store", {}, fs).ok();
    size_t acked = 0;
    if (!*made_durable) return acked;
    for (const std::string& doc : docs) {
      if (!store->Append(doc).ok()) break;
      ++acked;
    }
    return acked;
  };

  int total_barriers = 0;
  size_t base = 0;
  {
    auto fs = std::make_shared<FaultFs>();
    bool made_durable = false;
    const size_t acked = run_workload(fs, &made_durable);
    RLZ_CHECK(made_durable && acked == docs.size());
    total_barriers = fs->sync_count();
    base = BuildStore(collection)->num_docs();
  }
  const int kills = total_barriers < kMaxKills ? total_barriers : kMaxKills;
  // Spread the kill points across the whole workload so the bounded
  // sweep still covers MakeDurable, steady-state appends, and the tail.
  int failures = 0;
  int sweeps = 0;
  for (int i = 0; i < kills; ++i) {
    const int k = 1 + (i * total_barriers) / kills;
    for (const bool before : {true, false}) {
      ++sweeps;
      auto fs = std::make_shared<FaultFs>();
      fs->ArmCrash(k, before);
      bool made_durable = false;
      const size_t acked = run_workload(fs, &made_durable);
      auto reopened = ShardedStore::OpenDurable(
          "/store", OpenOptions{}, wal::WalWriterOptions{},
          fs->DurableClone(), nullptr);
      if (!made_durable) {
        continue;  // crash inside MakeDurable: nothing was promised
      }
      if (!reopened.ok()) {
        std::fprintf(stderr, "CRASH-SMOKE FAIL k=%d before=%d: %s\n", k,
                     before, reopened.status().ToString().c_str());
        ++failures;
        continue;
      }
      const size_t recovered = reopened.value()->num_docs() - base;
      // acked appends must survive; one in-flight append may also have
      // reached the disk before the crash.
      if (recovered < acked || recovered > acked + 1) {
        std::fprintf(stderr,
                     "CRASH-SMOKE FAIL k=%d before=%d: acked %zu, "
                     "recovered %zu\n",
                     k, before, acked, recovered);
        ++failures;
        continue;
      }
      std::string doc;
      for (size_t i2 = 0; i2 < recovered; ++i2) {
        const Status status = reopened.value()->Get(base + i2, &doc);
        if (!status.ok() || doc != docs[i2]) {
          std::fprintf(stderr, "CRASH-SMOKE FAIL k=%d before=%d: doc %zu\n",
                       k, before, i2);
          ++failures;
          break;
        }
      }
    }
  }
  std::printf("crash smoke: %d kill points (%d barriers total), %d sweeps, "
              "%d failures\n",
              kills, total_barriers, sweeps, failures);
  if (failures > 0) std::exit(1);
}

}  // namespace
}  // namespace bench
}  // namespace rlz

int main(int argc, char** argv) {
  bool smoke = false;
  bool crash_smoke = false;
  std::string out_path = "BENCH_recovery.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--crash-smoke") == 0) {
      crash_smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--crash-smoke] [--out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  if (crash_smoke) {
    rlz::bench::RunCrashSmoke();
    return 0;
  }
  rlz::bench::Run(smoke, out_path);
  return 0;
}
