// Micro benchmarks (google-benchmark): throughput of the individual
// substrates — suffix-array construction, longest-match queries with and
// without the jump-start table (the Refine acceleration ablation of
// DESIGN.md §5.1), factorization, the general-purpose compressors, and the
// integer codecs.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "codecs/int_codecs.h"
#include "core/rlz.h"
#include "corpus/generator.h"
#include "suffix/suffix_array.h"
#include "util/random.h"
#include "zip/gzipx.h"
#include "zip/lzmax.h"

namespace {

using namespace rlz;

const Collection& BenchCollection() {
  static const Collection* collection = [] {
    CorpusOptions options;
    options.target_bytes = 4 << 20;
    options.seed = 1234;
    return new Collection(GenerateCorpus(options).collection);
  }();
  return *collection;
}

std::string DictText(size_t bytes) {
  const Collection& c = BenchCollection();
  return std::string(
      DictionaryBuilder::BuildSampled(c.data(), bytes, 1024)->text());
}

void BM_SuffixArrayBuild(benchmark::State& state) {
  const std::string text = DictText(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSuffixArray(text));
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_SuffixArrayBuild)->Arg(64 << 10)->Arg(256 << 10)->Arg(1 << 20);

void BM_LongestMatch(benchmark::State& state) {
  const bool jump = state.range(0) != 0;
  const std::string text = DictText(256 << 10);
  SuffixMatcher matcher(text, {}, jump);
  const Collection& c = BenchCollection();
  const std::string_view doc = c.doc(0);
  size_t i = 0;
  for (auto _ : state) {
    const Match m = matcher.LongestMatch(doc.substr(i));
    benchmark::DoNotOptimize(m);
    i += m.len == 0 ? 1 : m.len;
    if (i >= doc.size()) i = 0;
  }
}
BENCHMARK(BM_LongestMatch)->Arg(0)->Arg(1);  // 0 = binary search only

void BM_Factorize(benchmark::State& state) {
  const Collection& c = BenchCollection();
  Dictionary dict(DictText(static_cast<size_t>(state.range(0))));
  Factorizer factorizer(&dict);
  std::vector<Factor> factors;
  size_t doc = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    factors.clear();
    factorizer.Factorize(c.doc(doc), &factors);
    bytes += c.doc(doc).size();
    doc = (doc + 1) % c.num_docs();
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_Factorize)->Arg(64 << 10)->Arg(256 << 10);

void BM_FactorDecode(benchmark::State& state) {
  const Collection& c = BenchCollection();
  RlzOptions options;
  options.dict_bytes = 128 << 10;
  const auto coding = PairCoding::FromName(
      state.range(0) == 0 ? "UV" : state.range(0) == 1 ? "ZV" : "ZZ");
  options.coding = coding.value();
  auto archive = CompressCollection(c, options);
  std::string doc;
  size_t id = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    RLZ_CHECK(archive->Get(id, &doc, nullptr).ok());
    bytes += doc.size();
    id = (id + 1) % archive->num_docs();
  }
  state.SetBytesProcessed(bytes);
  state.SetLabel(options.coding.name());
}
BENCHMARK(BM_FactorDecode)->Arg(0)->Arg(1)->Arg(2);

void BM_Compress(benchmark::State& state) {
  const Collection& c = BenchCollection();
  const std::string input(c.data().substr(0, 1 << 20));
  const Compressor* compressor =
      GetCompressor(state.range(0) == 0 ? CompressorId::kGzipx
                                        : CompressorId::kLzmax);
  for (auto _ : state) {
    std::string out;
    compressor->Compress(input, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * input.size());
  state.SetLabel(compressor->name());
}
BENCHMARK(BM_Compress)->Arg(0)->Arg(1);

void BM_Decompress(benchmark::State& state) {
  const Collection& c = BenchCollection();
  const std::string input(c.data().substr(0, 1 << 20));
  const Compressor* compressor =
      GetCompressor(state.range(0) == 0 ? CompressorId::kGzipx
                                        : CompressorId::kLzmax);
  std::string compressed;
  compressor->Compress(input, &compressed);
  for (auto _ : state) {
    std::string out;
    RLZ_CHECK(compressor->Decompress(compressed, &out).ok());
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * input.size());
  state.SetLabel(compressor->name());
}
BENCHMARK(BM_Decompress)->Arg(0)->Arg(1);

std::vector<uint32_t> FactorLengthLikeValues(size_t n) {
  Rng rng(77);
  std::vector<uint32_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(rng.Bernoulli(0.95)
                         ? static_cast<uint32_t>(rng.Uniform(100))
                         : static_cast<uint32_t>(rng.Uniform(100000)));
  }
  return values;
}

void BM_IntCodecEncode(benchmark::State& state) {
  const IntCodec* codec = GetIntCodec(static_cast<IntCodecId>(state.range(0)));
  const auto values = FactorLengthLikeValues(64 << 10);
  for (auto _ : state) {
    std::string out;
    codec->Encode(values, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
  state.SetLabel(IntCodecName(codec->id()));
}
BENCHMARK(BM_IntCodecEncode)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_IntCodecDecode(benchmark::State& state) {
  const IntCodec* codec = GetIntCodec(static_cast<IntCodecId>(state.range(0)));
  const auto values = FactorLengthLikeValues(64 << 10);
  std::string buf;
  codec->Encode(values, &buf);
  for (auto _ : state) {
    std::vector<uint32_t> out;
    size_t consumed = 0;
    RLZ_CHECK(codec->Decode(buf, values.size(), &out, &consumed).ok());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * values.size());
  state.SetLabel(IntCodecName(codec->id()));
}
BENCHMARK(BM_IntCodecDecode)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
