// Reproduces Table 10: compressing the Wikipedia-like corpus with ZZ pair
// codes relative to a "1 GB" dictionary (1% here) built from varied
// prefixes of the collection — the dynamic-update simulation of §3.6/§4.
// Expected shape: compression degrades by only ~1 percentage point from
// the 100% dictionary down to the 10% prefix, slightly more at 1%.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/rlz.h"

int main() {
  using namespace rlz;
  const Corpus& corpus = bench::WikiCrawl();
  const Collection& collection = corpus.collection;
  bench::PrintTableTitle(
      "Table 10: prefix dictionaries on wikis, ZZ coding (1.0 dictionary)",
      collection);

  const size_t dict_bytes =
      static_cast<size_t>(0.01 * collection.size_bytes());

  std::printf("%-10s %10s\n", "Prefix %", "Encoding %");
  for (const double prefix : {100.0, 90.0, 80.0, 70.0, 60.0, 50.0, 40.0, 30.0,
                              20.0, 10.0, 1.0}) {
    std::shared_ptr<const Dictionary> dict =
        DictionaryBuilder::BuildFromPrefix(collection.data(), prefix / 100.0,
                                           dict_bytes, 1024);
    RlzBuildOptions build;
    build.coding = kZZ;
    auto archive = RlzArchive::Build(collection, dict, build);
    const double enc_pct = 100.0 *
                           static_cast<double>(archive->stored_bytes()) /
                           static_cast<double>(collection.size_bytes());
    std::printf("%-10.1f %10.2f\n", prefix, enc_pct);
  }
  return 0;
}
