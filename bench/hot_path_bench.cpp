// Serving hot-path benchmark (DESIGN.md §9): measures decode throughput
// (MB/s, docs/s, p50/p99 per-document latency) for three decode
// configurations —
//
//   legacy  — a faithful replica of the pre-scratch decode path: fresh
//             position/length vectors and inflate buffer per call, then
//             per-factor append expansion with geometric output growth.
//             This is the "before" of the perf trajectory and the
//             fresh-allocation baseline of the smoke gate.
//   fresh   — the current decoder without scratch: per-call stream
//             buffers, but exact-size output + memcpy expansion.
//   scratch — the current decoder with a reused DecodeScratch: the
//             serving configuration (zero decode-side allocations).
//
// All three run over the same per-document encoded factor streams, so the
// comparison isolates the decode kernel. The bench also reports factorize
// throughput and single-/multi-threaded serving throughput through
// DocService (cache off, so every request decodes). Results are printed
// and written as machine-readable JSON (default BENCH_hot_path.json in
// the working directory) so the repo's perf trajectory is recorded and
// regression-gated.
//
//   ./build/bench/hot_path_bench                full run
//   ./build/bench/hot_path_bench --smoke       small corpus + gate: on
//         the UV pair (where decode is allocation-bound; ZV is
//         entropy-coder-bound and reported ungated) the scratch path
//         must beat the fresh-allocation (legacy) baseline by
//         kSmokeMinRatio on decode MB/s, else exit 1 (run by the
//         perf-smoke CI job)
//   ./build/bench/hot_path_bench --out FILE    JSON destination

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/dictionary.h"
#include "core/factor_coder.h"
#include "core/factorizer.h"
#include "core/rlz_archive.h"
#include "corpus/generator.h"
#include "io/file.h"
#include "serve/doc_service.h"
#include "util/logging.h"
#include "util/timer.h"

namespace rlz {
namespace bench {
namespace {

// The perf-smoke CI gate: reused-scratch decode must beat the
// fresh-allocation (legacy) baseline by at least this factor on the UV
// pair. UV is the paper's fastest-decode coding and the configuration
// where decode is allocation-bound, so it is what the gate protects; ZV
// decode is dominated by the gzipx entropy coder (which both paths share)
// and is reported ungated.
constexpr double kSmokeMinRatio = 1.5;

// Faithful replica of the pre-scratch FactorCoder::DecodeDoc: decode the
// factor streams with fresh per-call buffers (DecodeFactors), then expand
// with per-factor appends and no output reservation. Kept here (not in
// the library) purely as the benchmark baseline.
Status LegacyDecodeDoc(const FactorCoder& coder, std::string_view in,
                       const Dictionary& dict, std::string* text) {
  std::vector<Factor> factors;
  RLZ_RETURN_IF_ERROR(coder.DecodeFactors(in, &factors, nullptr));
  const std::string_view d = dict.text();
  for (const Factor& f : factors) {
    if (f.len == 0) {
      if (f.pos > 0xFF) return Status::Corruption("literal out of range");
      text->push_back(static_cast<char>(f.pos));
    } else {
      if (static_cast<size_t>(f.pos) + f.len > d.size()) {
        return Status::Corruption("factor outside dictionary");
      }
      text->append(d.substr(f.pos, f.len));
    }
  }
  return Status::OK();
}

enum class DecodeMode { kLegacy, kFresh, kScratch };

struct DecodeResult {
  double mb_per_s = 0.0;
  double docs_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

// Runs `repeats` full decode passes over the encoded documents in one
// configuration; throughput is best-of-repeats (the standard microbench
// convention), latency percentiles come from the last pass. Every decoded
// document is byte-compared against the source collection.
DecodeResult RunDecodePass(const FactorCoder& coder, const Dictionary& dict,
                           const std::vector<std::string>& encoded,
                           const Collection& collection, DecodeMode mode,
                           int repeats) {
  const size_t n = encoded.size();
  DecodeScratch scratch;
  std::vector<double> latencies_us(n);
  double best_seconds = 0.0;
  for (int r = 0; r < repeats; ++r) {
    Timer pass;
    for (size_t i = 0; i < n; ++i) {
      Timer one;
      std::string doc;  // serving allocates the output per request
      Status status;
      switch (mode) {
        case DecodeMode::kLegacy:
          status = LegacyDecodeDoc(coder, encoded[i], dict, &doc);
          break;
        case DecodeMode::kFresh:
          status = coder.DecodeDoc(encoded[i], dict, &doc);
          break;
        case DecodeMode::kScratch:
          status = coder.DecodeDoc(encoded[i], dict, &doc, &scratch);
          break;
      }
      latencies_us[i] = 1e6 * one.ElapsedSeconds();
      RLZ_CHECK(status.ok()) << status.ToString();
      RLZ_CHECK(doc == collection.doc(i)) << "decode mismatch at doc " << i;
    }
    const double seconds = pass.ElapsedSeconds();
    if (best_seconds == 0.0 || seconds < best_seconds) best_seconds = seconds;
  }
  DecodeResult result;
  result.mb_per_s =
      collection.size_bytes() / (1024.0 * 1024.0) / best_seconds;
  result.docs_per_s = static_cast<double>(n) / best_seconds;
  std::sort(latencies_us.begin(), latencies_us.end());
  result.p50_us = latencies_us[n / 2];
  result.p99_us = latencies_us[std::min(n - 1, n * 99 / 100)];
  return result;
}

struct ServeResult {
  double wall_dps = 0.0;
  double modeled_dps = 0.0;
};

// Serving throughput through DocService with the decode cache off, so
// every request exercises the per-worker-scratch decode path.
ServeResult RunServePass(const Archive& archive, size_t num_requests,
                         int threads) {
  DocServiceOptions options;
  options.num_threads = threads;
  options.cache_bytes = 0;
  DocService service(&archive, options);
  std::vector<std::future<GetResult>> futures;
  futures.reserve(num_requests);
  Timer wall;
  for (size_t r = 0; r < num_requests; ++r) {
    futures.push_back(service.Get(r % archive.num_docs()));
  }
  service.Drain();
  const double wall_seconds = wall.ElapsedSeconds();
  for (auto& f : futures) {
    const GetResult result = f.get();
    RLZ_CHECK(result.ok()) << result.status.ToString();
  }
  const ServiceStats stats = service.Stats();
  ServeResult result;
  result.wall_dps = static_cast<double>(num_requests) / wall_seconds;
  result.modeled_dps =
      stats.critical_path_seconds > 0.0
          ? static_cast<double>(num_requests) / stats.critical_path_seconds
          : 0.0;
  return result;
}

void AppendJsonDecode(const char* name, const DecodeResult& r,
                      std::string* out) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"mb_per_s\": %.1f, \"docs_per_s\": %.0f, "
                "\"p50_us\": %.2f, \"p99_us\": %.2f}",
                name, r.mb_per_s, r.docs_per_s, r.p50_us, r.p99_us);
  out->append(buf);
}

void Run(bool smoke, const std::string& out_path) {
  CorpusOptions corpus_options;
  corpus_options.target_bytes = smoke ? (4u << 20) : (16u << 20);
  corpus_options.seed = 20110613;
  const Corpus corpus = GenerateCorpus(corpus_options);
  const Collection& collection = corpus.collection;
  const double corpus_mb = collection.size_bytes() / (1024.0 * 1024.0);
  const int repeats = smoke ? 3 : 5;

  std::printf("hot_path_bench (%s): %zu docs, %.1f MB\n",
              smoke ? "smoke" : "full", collection.num_docs(), corpus_mb);

  // Dictionary + one factorization pass, shared by every coding (also the
  // factorize-throughput measurement).
  std::shared_ptr<const Dictionary> dict = DictionaryBuilder::BuildSampled(
      collection.data(), collection.size_bytes() / 100, 1024);
  Factorizer factorizer(dict.get());
  std::vector<std::vector<Factor>> docs(collection.num_docs());
  Timer factorize_timer;
  for (size_t i = 0; i < collection.num_docs(); ++i) {
    factorizer.Factorize(collection.doc(i), &docs[i]);
  }
  const double factorize_seconds = factorize_timer.ElapsedSeconds();
  const double factorize_mb_per_s = corpus_mb / factorize_seconds;
  std::printf("factorize: %.1f MB/s (%.2fs, avg factor %.1f)\n",
              factorize_mb_per_s, factorize_seconds,
              factorizer.stats().avg_factor_length());

  std::string json;
  json.append("{\n  \"bench\": \"hot_path\",\n");
  json.append(smoke ? "  \"mode\": \"smoke\",\n" : "  \"mode\": \"full\",\n");
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"corpus\": {\"docs\": %zu, \"bytes\": %llu, "
                "\"dict_bytes\": %zu, \"seed\": %llu},\n",
                collection.num_docs(),
                static_cast<unsigned long long>(collection.size_bytes()),
                dict->size(),
                static_cast<unsigned long long>(corpus_options.seed));
  json.append(buf);
  std::snprintf(buf, sizeof(buf),
                "  \"factorize\": {\"mb_per_s\": %.1f, \"seconds\": %.3f},\n",
                factorize_mb_per_s, factorize_seconds);
  json.append(buf);
  // The one-time "before" record: the real pre-scratch FactorCoder
  // measured from a pristine build of commit d02bb1b on the reference
  // host (full 16 MB corpus). Emitted as constants so regenerating the
  // checked-in BENCH_hot_path.json cannot lose the trajectory's origin;
  // the re-measurable stand-in on the current host is
  // decode.*.legacy_baseline.
  json.append(
      "  \"pre_pr_baseline\": {\n"
      "    \"comment\": \"Measured once at PR 5 from a pristine build of "
      "commit d02bb1b (the pre-PR tree) on the reference host, full 16 MB "
      "corpus, via the real pre-PR FactorCoder::DecodeDoc. Constants "
      "emitted by hot_path_bench; the re-measurable stand-in is "
      "decode.*.legacy_baseline.\",\n"
      "    \"factorize_mb_per_s\": 50.7,\n"
      "    \"decode\": {\n"
      "      \"ZV\": {\"mb_per_s\": 445.1, \"docs_per_s\": 24840, "
      "\"p50_us\": 36.78, \"p99_us\": 77.11},\n"
      "      \"UV\": {\"mb_per_s\": 1536.2, \"docs_per_s\": 85731, "
      "\"p50_us\": 9.72, \"p99_us\": 25.77}\n"
      "    }\n"
      "  },\n");
  json.append("  \"decode\": {\n");

  // The decode sweep: the paper's recommended pair (ZV) and the
  // fastest-decode pair (UV), legacy vs fresh vs scratch.
  double gate_ratio = 0.0;  // UV scratch vs legacy (see kSmokeMinRatio)
  const PairCoding codings[] = {kZV, kUV};
  std::printf("\n%-7s %-8s %10s %12s %9s %9s %8s\n", "coding", "path",
              "MB/s", "docs/s", "p50 us", "p99 us", "vs base");
  for (size_t c = 0; c < 2; ++c) {
    const FactorCoder coder(codings[c]);
    std::vector<std::string> encoded(collection.num_docs());
    for (size_t i = 0; i < collection.num_docs(); ++i) {
      RLZ_CHECK(coder.EncodeDoc(docs[i], &encoded[i]).ok());
    }
    const DecodeResult legacy = RunDecodePass(
        coder, *dict, encoded, collection, DecodeMode::kLegacy, repeats);
    const DecodeResult fresh = RunDecodePass(
        coder, *dict, encoded, collection, DecodeMode::kFresh, repeats);
    const DecodeResult scratch = RunDecodePass(
        coder, *dict, encoded, collection, DecodeMode::kScratch, repeats);
    const double vs_legacy = scratch.mb_per_s / legacy.mb_per_s;
    const double fresh_vs_legacy = fresh.mb_per_s / legacy.mb_per_s;
    const std::string name = coder.coding().name();
    std::printf("%-7s %-8s %10.1f %12.0f %9.2f %9.2f %8s\n", name.c_str(),
                "legacy", legacy.mb_per_s, legacy.docs_per_s, legacy.p50_us,
                legacy.p99_us, "1.00x");
    std::printf("%-7s %-8s %10.1f %12.0f %9.2f %9.2f %7.2fx\n", name.c_str(),
                "fresh", fresh.mb_per_s, fresh.docs_per_s, fresh.p50_us,
                fresh.p99_us, fresh_vs_legacy);
    std::printf("%-7s %-8s %10.1f %12.0f %9.2f %9.2f %7.2fx\n", name.c_str(),
                "scratch", scratch.mb_per_s, scratch.docs_per_s,
                scratch.p50_us, scratch.p99_us, vs_legacy);

    json.append("    \"" + name + "\": {\n");
    AppendJsonDecode("legacy_baseline", legacy, &json);
    json.append(",\n");
    AppendJsonDecode("fresh", fresh, &json);
    json.append(",\n");
    AppendJsonDecode("scratch", scratch, &json);
    json.append(",\n");
    std::snprintf(buf, sizeof(buf),
                  "      \"scratch_vs_legacy\": %.2f,\n"
                  "      \"fresh_vs_legacy\": %.2f\n    }%s\n",
                  vs_legacy, fresh_vs_legacy, c + 1 < 2 ? "," : "");
    json.append(buf);

    if (name == "UV") gate_ratio = vs_legacy;
  }
  json.append("  },\n");

  // Serving throughput: DocService over an rlz-ZV archive, cache off, so
  // every request runs the per-worker-scratch decode.
  const auto archive = RlzArchive::BuildFromFactors(dict, docs, kZV);
  const size_t requests =
      std::max<size_t>(collection.num_docs(), smoke ? 2000 : 20000);
  std::printf("\n%-8s %12s %14s   (DocService, cache off, rlz-ZV)\n",
              "threads", "wall dps", "modeled dps");
  json.append("  \"serve\": {\n");
  const int thread_rows[] = {1, 4};
  for (size_t t = 0; t < 2; ++t) {
    const ServeResult r = RunServePass(*archive, requests, thread_rows[t]);
    std::printf("%-8d %12.0f %14.0f\n", thread_rows[t], r.wall_dps,
                r.modeled_dps);
    std::snprintf(buf, sizeof(buf),
                  "    \"threads_%d\": {\"wall_dps\": %.0f, "
                  "\"modeled_dps\": %.0f}%s\n",
                  thread_rows[t], r.wall_dps, r.modeled_dps,
                  t + 1 < 2 ? "," : "");
    json.append(buf);
  }
  json.append("  },\n");

  const bool gate_pass = gate_ratio >= kSmokeMinRatio;
  std::snprintf(buf, sizeof(buf),
                "  \"gate\": {\"coding\": \"UV\", "
                "\"min_ratio_required\": %.2f, "
                "\"scratch_vs_legacy\": %.2f, \"pass\": %s}\n}\n",
                kSmokeMinRatio, gate_ratio, gate_pass ? "true" : "false");
  json.append(buf);

  const Status write_status = WriteFile(out_path, json);
  RLZ_CHECK(write_status.ok()) << write_status.ToString();
  std::printf("\nwrote %s\n", out_path.c_str());

  if (smoke) {
    std::printf("smoke gate: UV scratch >= %.2fx legacy: %s (%.2fx)\n",
                kSmokeMinRatio, gate_pass ? "PASS" : "FAIL", gate_ratio);
    if (!gate_pass) std::exit(1);
  }
}

}  // namespace
}  // namespace bench
}  // namespace rlz

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_hot_path.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }
  rlz::bench::Run(smoke, out_path);
  return 0;
}
