// Serving-layer throughput sweep (DESIGN.md §6): threads x shards x cache
// size against query-log traffic, reporting docs/sec.
//
// Two throughput columns are printed per configuration:
//   wall    — requests / elapsed wall time on THIS host. Only meaningful
//             on a multi-core machine; on a 1-core CI container every
//             thread count collapses to the same number.
//   modeled — requests / critical-path service time, where each worker is
//             charged its own thread-CPU time plus its private SimDisk
//             time (one core + one spindle per worker). This is the same
//             simulated-wall-time doctrine as Tables 4-9 (DESIGN.md §4)
//             and is what EXPERIMENTS.md quotes for thread scaling.
//
// A restart-cost table follows the sweep: every container format is saved
// to disk, reopened cold through OpenArchive, and timed (open latency plus
// the first Get) — the failover path of DESIGN.md §8. The rlz-family rows
// are measured both with the default open and the serving-only open
// (OpenOptions::build_suffix_array = false), which is what a restarting
// front-end uses.
//
//   ./build/bench/serve_throughput            (RLZ_BENCH_SCALE shrinks/grows)

#include <cstdio>
#include <filesystem>
#include <vector>

#include "bench_common.h"
#include "core/rlz.h"
#include "semistatic/semistatic_archive.h"
#include "serve/doc_service.h"
#include "serve/sharded_store.h"
#include "store/ascii_archive.h"
#include "store/blocked_archive.h"
#include "store/open_archive.h"
#include "util/logging.h"
#include "util/timer.h"

namespace rlz {
namespace bench {
namespace {

// Query-log ids replayed enough times to give the pool real work.
std::vector<size_t> MakeRequests(const AccessPatterns& patterns,
                                 size_t min_requests) {
  std::vector<size_t> requests;
  requests.reserve(min_requests + patterns.query_log.size());
  while (requests.size() < min_requests) {
    for (uint32_t id : patterns.query_log) requests.push_back(id);
  }
  return requests;
}

struct SweepResult {
  double wall_dps = 0.0;
  double modeled_dps = 0.0;
  double hit_rate = 0.0;
};

SweepResult RunOne(const ShardedStore& store,
                   const std::vector<size_t>& requests, int threads,
                   uint64_t cache_bytes) {
  DocServiceOptions options;
  options.num_threads = threads;
  options.cache_bytes = cache_bytes;
  DocService service(&store, options);
  std::vector<std::future<GetResult>> futures;
  futures.reserve(requests.size());
  Timer wall;
  for (size_t id : requests) futures.push_back(service.Get(id));
  service.Drain();
  const double wall_seconds = wall.ElapsedSeconds();
  for (auto& f : futures) {
    const GetResult result = f.get();
    RLZ_CHECK(result.ok()) << result.status.ToString();
  }
  const ServiceStats stats = service.Stats();
  RLZ_CHECK_EQ(stats.requests, requests.size());
  SweepResult r;
  r.wall_dps = requests.size() / wall_seconds;
  r.modeled_dps = stats.critical_path_seconds > 0.0
                      ? requests.size() / stats.critical_path_seconds
                      : 0.0;
  r.hit_rate = stats.cache.hit_rate();
  return r;
}

// Saves `archive`, drops it, and times the cold reopen plus the first
// document fetch — the restart cost a serving process pays per format.
void ReportColdOpen(const char* label, const Archive& archive,
                    const std::filesystem::path& dir,
                    const OpenOptions& options) {
  const std::string path = (dir / label).string();
  RLZ_CHECK(archive.Save(path).ok()) << label;

  Timer open_timer;
  auto reopened = OpenArchive(path, options);
  const double open_ms = 1e3 * open_timer.ElapsedSeconds();
  RLZ_CHECK(reopened.ok()) << label << ": " << reopened.status().ToString();

  std::string doc;
  Timer get_timer;
  RLZ_CHECK((*reopened)->Get((*reopened)->num_docs() / 2, &doc).ok());
  const double get_us = 1e6 * get_timer.ElapsedSeconds();

  std::printf("%-18s %-14s %10.1f %14.1f\n", label,
              (*reopened)->name().c_str(), open_ms, get_us);
}

void RestartCost(const Collection& collection) {
  std::printf(
      "\nrestart cost (save -> cold OpenArchive -> first Get), %zu docs:\n",
      collection.num_docs());
  std::printf("%-18s %-14s %10s %14s\n", "file", "format", "open ms",
              "first-get us");

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "rlz_restart_cost";
  std::filesystem::create_directories(dir);

  OpenOptions with_sa;     // default: rebuild suffix arrays (build path)
  OpenOptions serving;     // serving-only reopen: no suffix arrays
  serving.build_suffix_array = false;

  ReportColdOpen("ascii", AsciiArchive(collection), dir, serving);
  ReportColdOpen(
      "blocked",
      BlockedArchive(collection, GetCompressor(CompressorId::kGzipx),
                     64 << 10),
      dir, serving);
  ReportColdOpen("semistatic",
                 *SemiStaticArchive::Build(collection, SemiStaticScheme::kEtdc),
                 dir, serving);

  RlzOptions rlz_options;
  rlz_options.dict_bytes = collection.size_bytes() / 100;
  const auto rlz = CompressCollection(collection, rlz_options);
  ReportColdOpen("rlz.sa", *rlz, dir, with_sa);
  ReportColdOpen("rlz.serve", *rlz, dir, serving);

  ShardedStoreOptions store_options;
  store_options.num_shards = 4;
  store_options.dict_bytes = collection.size_bytes() / 100;
  const auto store = ShardedStore::Build(collection, store_options);
  ReportColdOpen("sharded.sa", *store, dir, with_sa);
  ReportColdOpen("sharded.serve", *store, dir, serving);

  std::filesystem::remove_all(dir);
}

void Run() {
  const Corpus& corpus = Gov2Crawl();
  const Collection& collection = corpus.collection;
  const AccessPatterns patterns = MakePatterns(corpus);
  const std::vector<size_t> requests = MakeRequests(patterns, 20000);

  std::printf("serve_throughput: %zu docs, %.1f MB, %zu query-log requests\n",
              collection.num_docs(),
              collection.size_bytes() / (1024.0 * 1024.0), requests.size());
  std::printf("%-7s %-8s %-9s %12s %14s %9s\n", "shards", "threads",
              "cache", "wall dps", "modeled dps", "hit%");

  const uint64_t cache_rows[] = {0, 16ull << 20};
  double modeled_1thread = 0.0;
  double modeled_4thread = 0.0;
  for (const int num_shards : {1, 4}) {
    ShardedStoreOptions store_options;
    store_options.num_shards = num_shards;
    store_options.dict_bytes = collection.size_bytes() / 100;
    const auto store = ShardedStore::Build(collection, store_options);
    for (const int threads : {1, 2, 4, 8}) {
      for (const uint64_t cache_bytes : cache_rows) {
        const SweepResult r = RunOne(*store, requests, threads, cache_bytes);
        char cache_label[16];
        std::snprintf(cache_label, sizeof(cache_label), "%lluM",
                      static_cast<unsigned long long>(cache_bytes >> 20));
        std::printf("%-7d %-8d %-9s %12.0f %14.0f %8.1f%%\n", num_shards,
                    threads, cache_bytes == 0 ? "off" : cache_label,
                    r.wall_dps, r.modeled_dps, 100.0 * r.hit_rate);
        if (num_shards == 4 && cache_bytes == 0) {
          if (threads == 1) modeled_1thread = r.modeled_dps;
          if (threads == 4) modeled_4thread = r.modeled_dps;
        }
      }
    }
  }
  if (modeled_1thread > 0.0) {
    std::printf("\n4-shard cache-off modeled scaling 1->4 threads: %.2fx\n",
                modeled_4thread / modeled_1thread);
  }

  RestartCost(collection);
}

}  // namespace
}  // namespace bench
}  // namespace rlz

int main() {
  rlz::bench::Run();
  return 0;
}
