// Ablation (paper §2.2): grammar compression. Measures Re-Pair's
// compression and — the paper's point — its construction cost against
// gzipx/lzmax on growing block sizes. Expected shape: competitive or
// better compression on repetitive blocks, with construction time orders
// of magnitude above the LZ family and growing super-linearly, "limiting
// their application to smaller collections".

#include <cstdio>

#include "bench_common.h"
#include "grammar/repair.h"
#include "util/timer.h"
#include "zip/gzipx.h"
#include "zip/lzmax.h"

int main() {
  using namespace rlz;
  const Collection& collection = bench::Gov2Crawl().collection;
  bench::PrintTableTitle("Ablation: Re-Pair grammar compression (§2.2)",
                         collection);

  std::printf("%-10s %-10s %9s %14s %14s\n", "Alg.", "Block", "Enc.(%)",
              "Comp(MB/s)", "Decomp(MB/s)");

  const RepairCompressor repair;
  const GzipxCompressor gzipx;
  const LzmaxCompressor lzmax;
  const Compressor* compressors[] = {&gzipx, &lzmax, &repair};

  for (const size_t block : {16u << 10, 64u << 10, 256u << 10}) {
    const std::string input(collection.data().substr(0, block));
    for (const Compressor* compressor : compressors) {
      std::string compressed;
      Timer compress_timer;
      compressor->Compress(input, &compressed);
      const double compress_s = compress_timer.ElapsedSeconds();

      std::string output;
      Timer decompress_timer;
      const Status s = compressor->Decompress(compressed, &output);
      const double decompress_s = decompress_timer.ElapsedSeconds();
      RLZ_CHECK(s.ok() && output == input) << compressor->name();

      std::printf("%-10s %-10zu %9.2f %14.2f %14.2f\n",
                  compressor->name().c_str(), block >> 10,
                  100.0 * compressed.size() / input.size(),
                  input.size() / 1048576.0 / compress_s,
                  input.size() / 1048576.0 / decompress_s);
    }
  }
  return 0;
}
