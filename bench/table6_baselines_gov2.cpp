// Reproduces Table 6: ASCII and blocked gzipx/lzmax baselines on the
// GOV2-like corpus in crawl order, across block sizes.

#include "bench_common.h"

int main() {
  rlz::bench::RunBaselineTable(
      "Table 6: baselines on gov2s, crawl order (GOV2 stand-in)",
      rlz::bench::Gov2Crawl());
  return 0;
}
