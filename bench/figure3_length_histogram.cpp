// Reproduces Figure 3: frequency histogram of encoded factor-length values
// on the GOV2-like corpus with a "0.5 GB" dictionary (0.5% of the
// collection here) and varied sample periods. The paper plots log-log
// frequency vs length; we print logarithmic buckets per sample period —
// the qualitative check is that the mass sits at small lengths regardless
// of the sample period.

#include <array>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/rlz.h"

namespace {

// Bucket upper bounds (inclusive), log-spaced as in the figure's x axis.
constexpr std::array<uint32_t, 7> kBuckets = {1,    3,    10,   31,
                                              100,  1000, 10000};

}  // namespace

int main() {
  using namespace rlz;
  const Corpus& corpus = bench::Gov2Crawl();
  const Collection& collection = corpus.collection;
  bench::PrintTableTitle(
      "Figure 3: histogram of factor length values, gov2s, 0.5 dictionary",
      collection);

  const size_t dict_bytes =
      static_cast<size_t>(0.005 * collection.size_bytes());

  std::printf("%-10s", "Samp.");
  for (uint32_t b : kBuckets) std::printf(" %9u", b);
  std::printf(" %9s %9s\n", ">10000", "avg.len");

  for (const size_t sample : {512u, 1024u, 2048u, 5120u, 10240u}) {
    auto dict = DictionaryBuilder::BuildSampled(collection.data(), dict_bytes,
                                                sample);
    Factorizer factorizer(dict.get());
    std::vector<Factor> factors;
    std::vector<uint64_t> counts(kBuckets.size() + 1, 0);
    for (size_t i = 0; i < collection.num_docs(); ++i) {
      factors.clear();
      factorizer.Factorize(collection.doc(i), &factors);
      for (const Factor& f : factors) {
        const uint32_t len = f.text_length();
        size_t b = 0;
        while (b < kBuckets.size() && len > kBuckets[b]) ++b;
        ++counts[b];
      }
    }
    if (sample >= 1024) {
      std::printf("%zuKB       ", sample / 1024);
    } else {
      std::printf("%zuB      ", sample);
    }
    for (uint64_t c : counts) std::printf(" %9llu", (unsigned long long)c);
    std::printf(" %9.2f\n", factorizer.stats().avg_factor_length());
  }
  return 0;
}
