#ifndef RLZ_BENCH_BENCH_COMMON_H_
#define RLZ_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/generator.h"
#include "store/archive.h"

namespace rlz {
namespace bench {

/// Scaled-down stand-ins for the paper's corpora (DESIGN.md §3/§4):
/// gov2s ~ 24 MB web crawl (GOV2 426 GB), wikis ~ 16 MB encyclopedia
/// (Wikipedia 256 GB). Override the scale with RLZ_BENCH_SCALE (e.g. 4.0
/// grows both 4x). Generated once per process and cached.
double BenchScale();
size_t Gov2Bytes();
size_t WikiBytes();

const Corpus& Gov2Crawl();
const Corpus& Gov2Url();
const Corpus& WikiCrawl();

/// Dictionary sizes standing in for the paper's 2.0 / 1.0 / 0.5 GB rows:
/// 2%, 1%, 0.5% of the collection (the paper's ratios are 0.47%/0.23%/0.12%
/// of 426 GB; at megabyte scale the ratio is doubled so absolute dictionary
/// sizes stay meaningful — see EXPERIMENTS.md "Scaling").
struct DictRow {
  const char* label;  // "2.0", "1.0", "0.5" (paper's GB labels)
  double fraction;    // of collection size
};
inline constexpr DictRow kDictRows[] = {
    {"2.0", 0.02}, {"1.0", 0.01}, {"0.5", 0.005}};

/// Paper block-size rows 0.0/0.1/0.2/0.5/1.0 MB, used verbatim: document
/// sizes are unscaled (18/45 KB averages as in the paper), so the
/// docs-per-block ratios match the paper exactly.
struct BlockRow {
  const char* label;  // paper MB label
  uint64_t bytes;     // 0 = one doc per block
};
inline constexpr BlockRow kBlockRows[] = {{"0.0", 0},
                                          {"0.1", 100 << 10},
                                          {"0.2", 200 << 10},
                                          {"0.5", 500 << 10},
                                          {"1.0", 1 << 20}};

/// The two access patterns of §4 "Method".
struct AccessPatterns {
  std::vector<uint32_t> sequential;
  std::vector<uint32_t> query_log;
};

/// Builds both patterns for `corpus`: a full sequential scan and a
/// BM25-ranked query-log pattern (top-20 per query, capped).
AccessPatterns MakePatterns(const Corpus& corpus);

/// One measured archive configuration (a row of Tables 4-9).
struct Measurement {
  double enc_pct = 0.0;       // stored bytes / collection bytes * 100
  double sequential_dps = 0;  // docs/sec in simulated wall time
  double query_log_dps = 0;
};

/// Replays both patterns against `archive`, charging reads to a fresh
/// SimDisk per pattern and adding measured CPU time (see DESIGN.md §4).
Measurement MeasureArchive(const Archive& archive,
                           const Collection& collection,
                           const AccessPatterns& patterns);

/// Table-row printing helpers (fixed-width, paper-like).
void PrintTableTitle(const std::string& title, const Collection& collection);
void PrintRlzHeader();
void PrintRlzRow(const char* dict_label, const std::string& coding,
                 const Measurement& m);
void PrintBaselineHeader();
void PrintBaselineRow(const std::string& alg, const char* block_label,
                      const Measurement& m);

/// Runs a full RLZ table (Tables 4/5/8): {2.0,1.0,0.5} dictionary rows x
/// {ZZ,ZV,UZ,UV} codings, one factorization pass per dictionary.
void RunRlzTable(const std::string& title, const Corpus& corpus);

/// Runs a full baseline table (Tables 6/7/9): ascii plus gzipx/lzmax at
/// every block-size row.
void RunBaselineTable(const std::string& title, const Corpus& corpus);

/// Runs a factor-statistics grid (Tables 2/3): dictionary size x sample
/// size -> average factor length and unused-dictionary percentage.
void RunFactorStatsTable(const std::string& title, const Corpus& corpus);

}  // namespace bench
}  // namespace rlz

#endif  // RLZ_BENCH_BENCH_COMMON_H_
