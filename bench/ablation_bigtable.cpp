// Ablation (paper §2.2): the Bigtable storage recipe — a Bentley-McIlroy
// long-range pass followed by a small-window compressor — as a blocked
// baseline, against plain gzipx blocks and RLZ, on crawl-ordered and
// URL-sorted data. The paper notes the BM pass "is especially effective
// ... on sorted collections"; the comparison here checks that ordering and
// that RLZ still wins on crawl order where host pages are scattered.

#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/rlz.h"
#include "store/blocked_archive.h"
#include "zip/bentley_mcilroy.h"

namespace {

void RunOrder(const char* label, const rlz::Corpus& corpus) {
  using namespace rlz;
  const Collection& collection = corpus.collection;
  const bench::AccessPatterns patterns = bench::MakePatterns(corpus);
  const BigtableCompressor bigtable;
  const uint64_t kBlock = 1 << 20;

  std::printf("\n-- %s --\n", label);
  bench::PrintBaselineHeader();
  {
    const BlockedArchive gz(collection, GetCompressor(CompressorId::kGzipx),
                            kBlock);
    bench::PrintBaselineRow("gzipx", "1.0",
                            bench::MeasureArchive(gz, collection, patterns));
  }
  {
    const BlockedArchive bt(collection, &bigtable, kBlock);
    bench::PrintBaselineRow("bmdiff", "1.0",
                            bench::MeasureArchive(bt, collection, patterns));
  }
  {
    RlzOptions options;
    options.dict_bytes =
        static_cast<size_t>(0.01 * collection.size_bytes());
    options.coding = kZZ;
    auto archive = CompressCollection(collection, options);
    bench::PrintBaselineRow(
        "rlz-ZZ", "-",
        bench::MeasureArchive(*archive, collection, patterns));
  }
}

}  // namespace

int main() {
  rlz::bench::PrintTableTitle(
      "Ablation: Bigtable-style BM+gzipx blocks (§2.2) vs gzipx vs RLZ",
      rlz::bench::Gov2Crawl().collection);
  RunOrder("crawl order", rlz::bench::Gov2Crawl());
  RunOrder("URL-sorted", rlz::bench::Gov2Url());
  return 0;
}
