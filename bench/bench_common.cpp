#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/rlz.h"
#include "search/inverted_index.h"
#include "search/query_log.h"
#include "store/ascii_archive.h"
#include "store/blocked_archive.h"
#include "util/logging.h"
#include "util/timer.h"

namespace rlz {
namespace bench {

double BenchScale() {
  static const double scale = [] {
    const char* env = std::getenv("RLZ_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return scale;
}

size_t Gov2Bytes() { return static_cast<size_t>(24.0 * BenchScale() * (1 << 20)); }
size_t WikiBytes() { return static_cast<size_t>(16.0 * BenchScale() * (1 << 20)); }

const Corpus& Gov2Crawl() {
  static const Corpus* corpus = [] {
    CorpusOptions options;
    options.style = CorpusStyle::kWeb;
    options.target_bytes = Gov2Bytes();
    options.seed = 426;
    return new Corpus(GenerateCorpus(options));
  }();
  return *corpus;
}

const Corpus& Gov2Url() {
  static const Corpus* corpus = new Corpus(SortByUrl(Gov2Crawl()));
  return *corpus;
}

const Corpus& WikiCrawl() {
  static const Corpus* corpus = [] {
    CorpusOptions options;
    options.style = CorpusStyle::kWiki;
    options.target_bytes = WikiBytes();
    options.seed = 256;
    return new Corpus(GenerateCorpus(options));
  }();
  return *corpus;
}

AccessPatterns MakePatterns(const Corpus& corpus) {
  AccessPatterns patterns;
  const size_t n = corpus.collection.num_docs();
  patterns.sequential = BuildSequentialPattern(n, n);

  const InvertedIndex index = InvertedIndex::Build(corpus.collection);
  QueryLogOptions qopts;
  qopts.num_queries = 400;
  qopts.top_k = 20;
  qopts.cap = 2000;
  qopts.seed = 20009;  // "topics 20,001-60,000" homage
  const auto queries = GenerateQueries(index, qopts);
  patterns.query_log = BuildQueryLogPattern(index, queries, qopts);
  RLZ_CHECK(!patterns.query_log.empty());
  return patterns;
}

namespace {

double ReplayPattern(const Archive& archive,
                     const std::vector<uint32_t>& pattern) {
  SimDisk disk;
  std::string doc;
  Timer timer;
  for (uint32_t id : pattern) {
    const Status s = archive.Get(id, &doc, &disk);
    RLZ_CHECK(s.ok()) << archive.name() << ": " << s.ToString();
  }
  const double cpu_seconds = timer.ElapsedSeconds();
  const double total = cpu_seconds + disk.total_seconds();
  return static_cast<double>(pattern.size()) / total;
}

}  // namespace

Measurement MeasureArchive(const Archive& archive,
                           const Collection& collection,
                           const AccessPatterns& patterns) {
  Measurement m;
  m.enc_pct = 100.0 * static_cast<double>(archive.stored_bytes()) /
              static_cast<double>(collection.size_bytes());
  m.sequential_dps = ReplayPattern(archive, patterns.sequential);
  m.query_log_dps = ReplayPattern(archive, patterns.query_log);
  return m;
}

void PrintTableTitle(const std::string& title, const Collection& collection) {
  std::printf("\n%s\n", title.c_str());
  std::printf("collection: %.1f MB, %zu docs, avg doc %.1f KB\n",
              collection.size_bytes() / 1048576.0, collection.num_docs(),
              collection.avg_doc_bytes() / 1024.0);
}

void PrintRlzHeader() {
  std::printf("%-10s %-8s %9s %12s %10s\n", "Size(GB~)", "Pos-Len", "Enc.(%)",
              "Sequential", "QueryLog");
}

void PrintRlzRow(const char* dict_label, const std::string& coding,
                 const Measurement& m) {
  std::printf("%-10s %-8s %9.2f %12.0f %10.0f\n", dict_label, coding.c_str(),
              m.enc_pct, m.sequential_dps, m.query_log_dps);
}

void PrintBaselineHeader() {
  std::printf("%-8s %-10s %9s %12s %10s\n", "Alg.", "Block(MB~)", "Enc.(%)",
              "Sequential", "QueryLog");
}

void PrintBaselineRow(const std::string& alg, const char* block_label,
                      const Measurement& m) {
  std::printf("%-8s %-10s %9.2f %12.0f %10.0f\n", alg.c_str(), block_label,
              m.enc_pct, m.sequential_dps, m.query_log_dps);
}

void RunRlzTable(const std::string& title, const Corpus& corpus) {
  const Collection& collection = corpus.collection;
  PrintTableTitle(title, collection);
  const AccessPatterns patterns = MakePatterns(corpus);

  // Factorize once per dictionary; encode under each coding.
  struct DictData {
    std::shared_ptr<const Dictionary> dict;
    std::vector<std::vector<Factor>> factors;
  };
  std::vector<DictData> dicts;
  for (const DictRow& row : kDictRows) {
    DictData data;
    data.dict = DictionaryBuilder::BuildSampled(
        collection.data(),
        static_cast<size_t>(row.fraction * collection.size_bytes()), 1024);
    Factorizer factorizer(data.dict.get());
    data.factors.resize(collection.num_docs());
    for (size_t i = 0; i < collection.num_docs(); ++i) {
      factorizer.Factorize(collection.doc(i), &data.factors[i]);
    }
    dicts.push_back(std::move(data));
  }

  PrintRlzHeader();
  for (const PairCoding coding : {kZZ, kZV, kUZ, kUV}) {
    for (size_t d = 0; d < dicts.size(); ++d) {
      auto archive = RlzArchive::BuildFromFactors(dicts[d].dict,
                                                  dicts[d].factors, coding);
      const Measurement m = MeasureArchive(*archive, collection, patterns);
      PrintRlzRow(kDictRows[d].label, coding.name(), m);
    }
  }
}

void RunBaselineTable(const std::string& title, const Corpus& corpus) {
  const Collection& collection = corpus.collection;
  PrintTableTitle(title, collection);
  const AccessPatterns patterns = MakePatterns(corpus);

  PrintBaselineHeader();
  {
    const AsciiArchive ascii(collection);
    PrintBaselineRow("ascii", "-", MeasureArchive(ascii, collection, patterns));
  }
  for (const CompressorId id : {CompressorId::kGzipx, CompressorId::kLzmax}) {
    const Compressor* compressor = GetCompressor(id);
    for (const BlockRow& row : kBlockRows) {
      const BlockedArchive archive(collection, compressor, row.bytes);
      PrintBaselineRow(compressor->name(), row.label,
                       MeasureArchive(archive, collection, patterns));
    }
  }
}

void RunFactorStatsTable(const std::string& title, const Corpus& corpus) {
  const Collection& collection = corpus.collection;
  PrintTableTitle(title, collection);
  std::printf("%-10s %-10s %10s %10s\n", "Size(GB~)", "Samp.(KB)", "Avg.Fact.",
              "Unused(%)");
  for (const DictRow& row : kDictRows) {
    for (const double sample_kb : {0.5, 1.0, 2.0, 5.0}) {
      auto dict = DictionaryBuilder::BuildSampled(
          collection.data(),
          static_cast<size_t>(row.fraction * collection.size_bytes()),
          static_cast<size_t>(sample_kb * 1024));
      Factorizer factorizer(dict.get(), /*track_coverage=*/true);
      std::vector<Factor> factors;
      for (size_t i = 0; i < collection.num_docs(); ++i) {
        factors.clear();
        factorizer.Factorize(collection.doc(i), &factors);
      }
      std::printf("%-10s %-10.1f %10.2f %10.2f\n", row.label, sample_kb,
                  factorizer.stats().avg_factor_length(),
                  100.0 * factorizer.UnusedFraction());
    }
  }
}

}  // namespace bench
}  // namespace rlz
