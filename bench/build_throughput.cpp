// Build-throughput sweep (DESIGN.md §7): threads x chunk-size against the
// synthetic web crawl, reporting encode MB/s and speedup vs the serial
// build.
//
// Two speed columns are printed per configuration:
//   wall MB/s — collection bytes / elapsed wall time on THIS host. Only
//               meaningful on a multi-core machine; on a 1-core CI
//               container every thread count collapses to the same number.
//   modeled   — serial build CPU / the busiest worker's thread-CPU time
//               (the pipeline's critical path). This is the speedup of a
//               machine with one core per worker — the simulated-wall-time
//               doctrine of DESIGN.md §4/§6 applied to the build path,
//               and what EXPERIMENTS.md quotes for build scaling.
//
// Every configuration is checked against the serial baseline (payload
// bytes and factor counts must match exactly; full byte-identity is
// property-tested in tests/build_test.cpp).
//
//   ./build/bench/build_throughput            (RLZ_BENCH_SCALE shrinks/grows)
//   ./build/bench/build_throughput --smoke    (tiny corpus; CI smoke test)

#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_common.h"
#include "core/rlz.h"
#include "util/logging.h"
#include "util/timer.h"

namespace rlz {
namespace bench {
namespace {

struct BuildRun {
  double wall_mbps = 0.0;
  double modeled_speedup = 0.0;
  size_t chunks = 0;
  uint64_t payload_bytes = 0;
  uint64_t num_factors = 0;
};

BuildRun RunOne(const Collection& collection,
                const std::shared_ptr<const Dictionary>& dict, int threads,
                size_t chunk_docs, double serial_cpu_seconds) {
  RlzBuildOptions options;
  options.coding = kZV;
  options.num_threads = threads;
  options.chunk_docs = chunk_docs;
  RlzBuildInfo info;
  Timer wall;
  const auto archive = RlzArchive::Build(collection, dict, options, &info);
  const double wall_seconds = wall.ElapsedSeconds();
  BuildRun run;
  run.wall_mbps = collection.size_bytes() / (1024.0 * 1024.0) / wall_seconds;
  run.modeled_speedup =
      info.build_critical_path_seconds > 0.0
          ? serial_cpu_seconds / info.build_critical_path_seconds
          : 0.0;
  run.chunks = info.build_chunks;
  run.payload_bytes = archive->payload_bytes();
  run.num_factors = info.stats.num_factors;
  return run;
}

int Run(bool smoke) {
  Collection smoke_collection;
  const Collection* collection = nullptr;
  if (smoke) {
    CorpusOptions options;
    options.target_bytes = 2 << 20;
    options.seed = 20110613;
    smoke_collection = GenerateCorpus(options).collection;
    collection = &smoke_collection;
  } else {
    collection = &Gov2Crawl().collection;
  }

  std::printf("build_throughput%s: %zu docs, %.1f MB, ZV, dict 1%%\n",
              smoke ? " (smoke)" : "", collection->num_docs(),
              collection->size_bytes() / (1024.0 * 1024.0));

  const std::shared_ptr<const Dictionary> dict =
      DictionaryBuilder::BuildSampled(collection->data(),
                                      collection->size_bytes() / 100, 1024);

  // Serial baseline: its CPU time is the numerator of every modeled
  // speedup, and its stats are the identity reference.
  RlzBuildOptions serial_options;
  serial_options.coding = kZV;
  Timer serial_wall;
  RlzBuildInfo serial_info;
  auto serial_archive =
      RlzArchive::Build(*collection, dict, serial_options, &serial_info);
  const double serial_seconds = serial_wall.ElapsedSeconds();
  const double serial_cpu = serial_info.build_cpu_seconds;
  const uint64_t serial_payload = serial_archive->payload_bytes();
  serial_archive.reset();
  std::printf("serial baseline: %.2fs wall, %.2fs cpu, %.1f MB/s\n\n",
              serial_seconds, serial_cpu,
              collection->size_bytes() / (1024.0 * 1024.0) / serial_seconds);
  std::printf("%-8s %-11s %8s %12s %10s %10s\n", "threads", "chunk_docs",
              "chunks", "wall MB/s", "modeled", "payload=");

  const int thread_rows_full[] = {1, 2, 4, 8};
  const int thread_rows_smoke[] = {1, 2, 4};
  // Smoke corpora have ~100 docs, so the smoke chunk must be small enough
  // to give every worker several chunks.
  const size_t chunk_rows_full[] = {16, 64, 256};
  const size_t chunk_rows_smoke[] = {8};
  const int* thread_rows = smoke ? thread_rows_smoke : thread_rows_full;
  const size_t num_thread_rows = smoke ? 3 : 4;
  const size_t* chunk_rows = smoke ? chunk_rows_smoke : chunk_rows_full;
  const size_t num_chunk_rows = smoke ? 1 : 3;

  double speedup_at_4 = 0.0;
  bool all_identical = true;
  for (size_t t = 0; t < num_thread_rows; ++t) {
    for (size_t c = 0; c < num_chunk_rows; ++c) {
      const BuildRun run = RunOne(*collection, dict, thread_rows[t],
                                  chunk_rows[c], serial_cpu);
      const bool identical = run.payload_bytes == serial_payload &&
                             run.num_factors == serial_info.stats.num_factors;
      all_identical = all_identical && identical;
      std::printf("%-8d %-11zu %8zu %12.1f %9.2fx %10s\n", thread_rows[t],
                  chunk_rows[c], run.chunks, run.wall_mbps,
                  run.modeled_speedup, identical ? "yes" : "NO");
      if (thread_rows[t] == 4 && chunk_rows[c] == (smoke ? 8u : 64u)) {
        speedup_at_4 = run.modeled_speedup;
      }
    }
  }

  std::printf("\nmodeled speedup at 4 threads (chunk %u): %.2fx\n",
              smoke ? 8u : 64u, speedup_at_4);
  RLZ_CHECK(all_identical) << "a parallel build diverged from serial";
  if (speedup_at_4 < 2.5) {
    std::printf("WARNING: modeled 4-thread speedup below 2.5x\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace rlz

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  return rlz::bench::Run(smoke);
}
